#include "src/platform/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/error.hpp"

namespace miniphi::platform {
namespace {

/// Bytes of one CLA site block (16 doubles) and of a per-site scale counter.
constexpr double kBlockBytes = 16.0 * 8.0;
constexpr double kScaleBytes = 4.0;
constexpr double kTipCodeBytes = 1.0;

}  // namespace

KernelProfile kernel_profile(core::TraceKernel kernel, bool left_tip, bool right_tip) {
  KernelProfile profile;
  const double left_read = left_tip ? kTipCodeBytes : kBlockBytes + kScaleBytes;
  const double right_read = right_tip ? kTipCodeBytes : kBlockBytes + kScaleBytes;
  switch (kernel) {
    case core::TraceKernel::kNewview:
      // Per inner child: 16 outputs × 4-term dot product (mul+add = 2 flops).
      // Tip children are table lookups.  Then x3 = a∘b (16) and the W
      // back-transform (another 16×4×2).
      profile.flops = 128.0 * ((left_tip ? 0 : 1) + (right_tip ? 0 : 1)) + 16.0 + 128.0;
      profile.bytes_read = left_read + right_read;
      profile.bytes_written = kBlockBytes + kScaleBytes;
      break;
    case core::TraceKernel::kEvaluate:
      // Dot product over 16 lanes (×3 flops with the diag multiply) + log.
      profile.flops = (right_tip ? 32.0 : 48.0) + 25.0;
      profile.bytes_read = kBlockBytes + kScaleBytes + right_read;
      profile.bytes_written = 0.0;
      break;
    case core::TraceKernel::kDerivSum:
      profile.flops = 16.0;
      profile.bytes_read = kBlockBytes + (right_tip ? kTipCodeBytes : kBlockBytes);
      profile.bytes_written = kBlockBytes;
      break;
    case core::TraceKernel::kDerivCore:
      // Three 16-lane dot products + the site-blocked scalar epilogue.
      profile.flops = 96.0 + 10.0;
      profile.bytes_read = kBlockBytes;
      profile.bytes_written = 0.0;
      break;
  }
  return profile;
}

double call_seconds(const ExecConfig& config, core::TraceKernel kernel, bool left_tip,
                    bool right_tip, std::int64_t sites) {
  const PlatformSpec& platform = config.platform;
  MINIPHI_ASSERT(platform.kernel_workers > 0);
  const KernelProfile profile = kernel_profile(kernel, left_tip, right_tip);

  // The CPU baseline kernels (AVX RAxML/ExaML) do not use streaming stores
  // (Section V-B5 is a MIC-only optimization), so every written cache line
  // is first read for ownership.
  const bool streaming_stores = platform.kind == PlatformKind::kMic;
  const double bytes_per_site =
      profile.bytes_read + profile.bytes_written * (streaming_stores ? 1.0 : 2.0);

  const int workers_total = platform.kernel_workers * config.cards;
  const auto sites_per_worker =
      static_cast<double>((sites + workers_total - 1) / workers_total);

  // Latency/concurrency ramp: short per-worker streams cannot saturate the
  // memory system (most punishing on the in-order MIC cores).
  const double ramp =
      sites_per_worker / (sites_per_worker + platform.sites_half_saturation);

  const auto kernel_index = static_cast<std::size_t>(kernel);
  const double card_bandwidth = platform.memory_bandwidth_gbs * 1e9 *
                                platform.kernel_bandwidth_fraction[kernel_index];
  const double worker_bandwidth = card_bandwidth / platform.kernel_workers * ramp;
  const double worker_flops =
      platform.peak_dp_gflops * 1e9 * platform.flops_fraction / platform.kernel_workers;

  const double bandwidth_time = sites_per_worker * bytes_per_site / worker_bandwidth;
  const double flops_time = sites_per_worker * profile.flops / worker_flops;
  double seconds = std::max(bandwidth_time, flops_time);

  // Per-call synchronization.
  seconds += platform.forkjoin_region_seconds;
  if (kernel == core::TraceKernel::kEvaluate || kernel == core::TraceKernel::kDerivCore) {
    // Scalar Allreduce across all ranks; the slowest link dominates.
    seconds += platform.allreduce_intra_seconds;
    if (config.cards > 1) seconds += config.allreduce_inter_seconds;
  }
  if (config.offload_mode) seconds += config.offload_latency_seconds;
  return seconds;
}

SimulatedTime simulate_trace(const core::KernelTrace& trace, const ExecConfig& config) {
  SimulatedTime result;
  for (const auto& call : trace.calls) {
    const double seconds =
        call_seconds(config, call.kernel, call.left_tip, call.right_tip, call.sites);
    result.total_seconds += seconds;
    result.per_kernel_seconds[static_cast<std::size_t>(call.kernel)] += seconds;

    double sync = config.platform.forkjoin_region_seconds;
    if (call.kernel == core::TraceKernel::kEvaluate ||
        call.kernel == core::TraceKernel::kDerivCore) {
      sync += config.platform.allreduce_intra_seconds;
      if (config.cards > 1) sync += config.allreduce_inter_seconds;
    }
    result.sync_seconds += sync;
    if (config.offload_mode) result.offload_seconds += config.offload_latency_seconds;
  }
  result.compute_seconds = result.total_seconds - result.sync_seconds - result.offload_seconds;
  return result;
}

double energy_wh(const ExecConfig& config, double seconds) {
  return config.platform.max_tdp_watts * config.cards * seconds / 3600.0;
}

ExecConfig config_e5_2630() { return ExecConfig{xeon_e5_2630(), 1, 150e-6, false, 300e-6}; }

ExecConfig config_e5_2680() { return ExecConfig{xeon_e5_2680(), 1, 150e-6, false, 300e-6}; }

ExecConfig config_phi_single() { return ExecConfig{xeon_phi_5110p(), 1, 150e-6, false, 300e-6}; }

ExecConfig config_phi_dual() { return ExecConfig{xeon_phi_5110p(), 2, 150e-6, false, 300e-6}; }

namespace {

/// Double lanes per vector register.
double isa_lanes(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      return 1.0;
    case simd::Isa::kAvx2:
      return 4.0;
    case simd::Isa::kAvx512:
      return 8.0;
  }
  return 1.0;
}

/// Half-saturation pattern count per lane: the stream length at which a
/// vector unit reaches half its peak speedup (the per-worker
/// sites_half_saturation ramp of call_seconds, applied per lane).
constexpr double kLaneHalfSaturation = 64.0;

/// Per-call fixed cost per lane, in site-units: prologue/epilogue, masked
/// remainder, and the wider spill/fill state of wide kernels.
constexpr double kLaneCallCost = 24.0;

}  // namespace

double partition_cost(std::int64_t patterns, simd::Isa isa) {
  MINIPHI_CHECK(patterns >= 0, "partition_cost: negative pattern count");
  const double width = isa_lanes(isa);
  const double sites = static_cast<double>(patterns);
  const double ramp = sites / (sites + width * kLaneHalfSaturation);
  const double speedup = 1.0 + (width - 1.0) * ramp;
  return sites / speedup + width * kLaneCallCost;
}

simd::Isa choose_partition_isa(std::int64_t patterns, simd::Isa widest) {
  simd::Isa best = simd::Isa::kScalar;
  double best_cost = partition_cost(patterns, best);
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (static_cast<int>(isa) > static_cast<int>(widest)) break;
    const double cost = partition_cost(patterns, isa);
    // Strict improvement keeps the choice stable at exact crossovers.
    if (cost < best_cost) {
      best = isa;
      best_cost = cost;
    }
  }
  return best;
}

core::StreamPlan plan_partition_streams(std::span<const std::int64_t> partition_patterns,
                                        int stream_count, simd::Isa widest,
                                        std::span<const double> budget_fraction) {
  MINIPHI_CHECK(stream_count >= 1, "plan_partition_streams: stream_count must be >= 1");
  const auto n = static_cast<int>(partition_patterns.size());
  MINIPHI_CHECK(budget_fraction.empty() || budget_fraction.size() == partition_patterns.size(),
                "plan_partition_streams: budget_fraction size does not match the partition count");
  core::StreamPlan plan;
  plan.stream_count = std::clamp(stream_count, 1, std::max(n, 1));
  plan.partition_stream.assign(static_cast<std::size_t>(n), 0);
  plan.partition_isa.reserve(static_cast<std::size_t>(n));
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    const std::int64_t patterns = partition_patterns[static_cast<std::size_t>(p)];
    const simd::Isa isa = choose_partition_isa(patterns, widest);
    plan.partition_isa.push_back(isa);
    double cost = partition_cost(patterns, isa);
    if (!budget_fraction.empty()) {
      // Tight-budget partitions recompute evicted CLAs: model a linear ramp
      // from 1× (full residency) to 2× (minimum working set).
      const double fraction = std::clamp(budget_fraction[static_cast<std::size_t>(p)], 0.0, 1.0);
      cost *= 2.0 - fraction;
    }
    costs.push_back(cost);
  }
  // LPT: heaviest partition first onto the least-loaded stream.  stable_sort
  // + strict less keep the assignment deterministic under cost ties.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return costs[static_cast<std::size_t>(a)] > costs[static_cast<std::size_t>(b)];
  });
  std::vector<double> load(static_cast<std::size_t>(plan.stream_count), 0.0);
  for (const int p : order) {
    int lightest = 0;
    for (int s = 1; s < plan.stream_count; ++s) {
      if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(lightest)]) lightest = s;
    }
    plan.partition_stream[static_cast<std::size_t>(p)] = lightest;
    load[static_cast<std::size_t>(lightest)] += costs[static_cast<std::size_t>(p)];
  }
  return plan;
}

}  // namespace miniphi::platform
