// Roofline-style cost model: prices a real kernel-invocation trace on a
// simulated platform (Table I hardware we do not physically have).
//
// Mechanisms modeled — each one is a mechanism the paper identifies:
//   * streaming bandwidth bound per kernel (Section V-B6: "memory access
//     latencies dominate runtimes"),
//   * read-for-ownership write traffic on the CPU baseline, absent on the
//     MIC thanks to streaming stores (Section V-B5),
//   * a latency/concurrency ramp penalizing small per-worker site blocks
//     (Section VI-B2: 236 threads × few sites each is sync/latency bound),
//   * per-kernel-call fork-join overhead for in-kernel OpenMP threading
//     (Section V-D hybrid scheme),
//   * small-message Allreduce latency per reduction kernel call — 2 µs on
//     one device, ~20 µs across MIC cards over PCIe (Section VI-B3),
//   * per-call offload invocation latency for the rejected offload design
//     (Section V-C).
#pragma once

#include <array>
#include <cstdint>

#include "src/core/trace.hpp"
#include "src/platform/spec.hpp"

namespace miniphi::platform {

/// Per-site arithmetic/traffic footprint of one kernel call, derived by
/// counting the kernel inner loops (asserted against the code by tests).
struct KernelProfile {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
};

/// Footprint for DNA + Γ(4): 16-double site blocks.
KernelProfile kernel_profile(core::TraceKernel kernel, bool left_tip, bool right_tip);

/// One execution configuration of Table III (a platform × card count).
struct ExecConfig {
  PlatformSpec platform;
  int cards = 1;  ///< 1 for CPUs; 1 or 2 Xeon Phi cards
  /// Cost of one Allreduce spanning ranks on different cards.  The paper's
  /// microbenchmark measures ~20 µs for the minimal 2-rank MIC↔MIC case
  /// (Section VI-B3); the full 4-rank collective of the dual-card ExaML run
  /// (2 ranks/card, serialized PCIe hops, oversubscribed cores) costs
  /// several such hops — 150 µs, calibrated once against the small-
  /// alignment end of Figure 4.
  double allreduce_inter_seconds = 150e-6;
  /// Offload execution mode: adds the offload runtime's per-invocation
  /// latency to every kernel call (the paper measured this to roughly
  /// double total runtime, which is why the native mode won).
  bool offload_mode = false;
  /// Per-invocation cost of the Intel offload runtime (dispatch + pointer
  /// marshalling + PCIe doorbell).  The paper found it "comparable to and
  /// partially exceeding the time required for the actual computation"
  /// (Section V-C), i.e. hundreds of µs at their per-call granularity;
  /// 300 µs sits in the range reported by Newburn et al. [27].
  double offload_latency_seconds = 300e-6;
};

struct SimulatedTime {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;
  double sync_seconds = 0.0;     ///< fork-join + Allreduce
  double offload_seconds = 0.0;  ///< offload invocation latency (if enabled)
  /// Compute + per-call sync attributed per kernel, Figure-3 style.
  std::array<double, 4> per_kernel_seconds{};
};

/// Time for one kernel call over `sites` patterns under the configuration.
double call_seconds(const ExecConfig& config, core::TraceKernel kernel, bool left_tip,
                    bool right_tip, std::int64_t sites);

/// Prices a whole trace.
SimulatedTime simulate_trace(const core::KernelTrace& trace, const ExecConfig& config);

/// Energy estimate exactly as in the paper (Section VI-B4):
/// E[Wh] = MaxTDP[W] × RunTime[s] / 3600, TDP summed over cards.
double energy_wh(const ExecConfig& config, double seconds);

/// Convenience constructors for the four Table III configurations.
ExecConfig config_e5_2630();
ExecConfig config_e5_2680();
ExecConfig config_phi_single();
ExecConfig config_phi_dual();

}  // namespace miniphi::platform
