// Roofline-style cost model: prices a real kernel-invocation trace on a
// simulated platform (Table I hardware we do not physically have).
//
// Mechanisms modeled — each one is a mechanism the paper identifies:
//   * streaming bandwidth bound per kernel (Section V-B6: "memory access
//     latencies dominate runtimes"),
//   * read-for-ownership write traffic on the CPU baseline, absent on the
//     MIC thanks to streaming stores (Section V-B5),
//   * a latency/concurrency ramp penalizing small per-worker site blocks
//     (Section VI-B2: 236 threads × few sites each is sync/latency bound),
//   * per-kernel-call fork-join overhead for in-kernel OpenMP threading
//     (Section V-D hybrid scheme),
//   * small-message Allreduce latency per reduction kernel call — 2 µs on
//     one device, ~20 µs across MIC cards over PCIe (Section VI-B3),
//   * per-call offload invocation latency for the rejected offload design
//     (Section V-C).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "src/core/partition_spec.hpp"
#include "src/core/trace.hpp"
#include "src/platform/spec.hpp"

namespace miniphi::platform {

/// Per-site arithmetic/traffic footprint of one kernel call, derived by
/// counting the kernel inner loops (asserted against the code by tests).
struct KernelProfile {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
};

/// Footprint for DNA + Γ(4): 16-double site blocks.
KernelProfile kernel_profile(core::TraceKernel kernel, bool left_tip, bool right_tip);

/// One execution configuration of Table III (a platform × card count).
struct ExecConfig {
  PlatformSpec platform;
  int cards = 1;  ///< 1 for CPUs; 1 or 2 Xeon Phi cards
  /// Cost of one Allreduce spanning ranks on different cards.  The paper's
  /// microbenchmark measures ~20 µs for the minimal 2-rank MIC↔MIC case
  /// (Section VI-B3); the full 4-rank collective of the dual-card ExaML run
  /// (2 ranks/card, serialized PCIe hops, oversubscribed cores) costs
  /// several such hops — 150 µs, calibrated once against the small-
  /// alignment end of Figure 4.
  double allreduce_inter_seconds = 150e-6;
  /// Offload execution mode: adds the offload runtime's per-invocation
  /// latency to every kernel call (the paper measured this to roughly
  /// double total runtime, which is why the native mode won).
  bool offload_mode = false;
  /// Per-invocation cost of the Intel offload runtime (dispatch + pointer
  /// marshalling + PCIe doorbell).  The paper found it "comparable to and
  /// partially exceeding the time required for the actual computation"
  /// (Section V-C), i.e. hundreds of µs at their per-call granularity;
  /// 300 µs sits in the range reported by Newburn et al. [27].
  double offload_latency_seconds = 300e-6;
};

struct SimulatedTime {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;
  double sync_seconds = 0.0;     ///< fork-join + Allreduce
  double offload_seconds = 0.0;  ///< offload invocation latency (if enabled)
  /// Compute + per-call sync attributed per kernel, Figure-3 style.
  std::array<double, 4> per_kernel_seconds{};
};

/// Time for one kernel call over `sites` patterns under the configuration.
double call_seconds(const ExecConfig& config, core::TraceKernel kernel, bool left_tip,
                    bool right_tip, std::int64_t sites);

/// Prices a whole trace.
SimulatedTime simulate_trace(const core::KernelTrace& trace, const ExecConfig& config);

/// Energy estimate exactly as in the paper (Section VI-B4):
/// E[Wh] = MaxTDP[W] × RunTime[s] / 3600, TDP summed over cards.
double energy_wh(const ExecConfig& config, double seconds);

/// Convenience constructors for the four Table III configurations.
ExecConfig config_e5_2630();
ExecConfig config_e5_2680();
ExecConfig config_phi_single();
ExecConfig config_phi_dual();

// ---------------------------------------------------------------------------
// Stream planning (PR 8): per-partition back-end choice + stream grouping.
//
// The same latency/concurrency ramp the trace pricer applies per worker
// applies per *vector unit*: a kernel over few patterns cannot amortize a
// wide vector's prologue/remainder handling, so the widest ISA is not
// always the fastest.  choose_partition_isa prices each supported ISA for a
// partition's pattern count and picks the cheapest; plan_partition_streams
// then balances the modeled per-partition costs across stream groups
// (longest-processing-time-first), producing the core::StreamPlan that
// PartitionedEvaluator's stream executor consumes.
// ---------------------------------------------------------------------------

/// Modeled evaluation cost of one partition on one kernel back-end, in
/// site-units (arbitrary but comparable across ISAs).  Saturating ramp: the
/// speedup of a w-lane ISA over scalar approaches w only once the pattern
/// count is large against the ISA's half-saturation size; a per-call
/// overhead growing with the width prices the longer prologue/epilogue and
/// masked-remainder handling of wide kernels.
double partition_cost(std::int64_t patterns, simd::Isa isa);

/// Cheapest back-end for a partition of `patterns` compressed sites, never
/// wider than `widest` (pass simd::best_supported_isa() — the default — to
/// honor the host).  Tiny partitions pick kScalar, mid-size kAvx2, large
/// kAvx512; the chosen width is non-decreasing in the pattern count.
simd::Isa choose_partition_isa(std::int64_t patterns, simd::Isa widest = simd::best_supported_isa());

/// Builds the stream plan for a partitioned job: chooses each partition's
/// back-end via choose_partition_isa, then assigns partitions to at most
/// `stream_count` stream groups by LPT over the modeled costs (heaviest
/// partition first onto the least-loaded stream, ties to the lowest stream
/// id — deterministic for a given input).  stream_count is clamped to the
/// partition count; every returned stream owns at least one partition.
///
/// `budget_fraction` (optional, one entry per partition) makes the packing
/// budget-aware: fraction granted/full of the partition's resident CLA pool
/// under a carved byte budget (core::carve_cla_budgets).  A partition at
/// fraction f is modeled at (2 - f)× its full-budget cost — a minimum-budget
/// partition re-derives roughly one extra traversal's worth of evicted CLAs,
/// the 2× bound bench_ablation_memory gates — so tight partitions are spread
/// across streams instead of piling onto one.
core::StreamPlan plan_partition_streams(std::span<const std::int64_t> partition_patterns,
                                        int stream_count,
                                        simd::Isa widest = simd::best_supported_isa(),
                                        std::span<const double> budget_fraction = {});

}  // namespace miniphi::platform
