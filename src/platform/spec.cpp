#include "src/platform/spec.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace miniphi::platform {

// Calibration notes (all four experiments downstream use these values):
//
//  * kernel_bandwidth_fraction — set once so that the model's per-kernel
//    MIC/CPU time ratios at large alignments reproduce the paper's Figure 3
//    (newview ≈2.0×, evaluate ≈1.9×, derivativeSum ≈2.8×, derivativeCore
//    ≈2.0×).  CPU kernels use a uniform 0.60 of peak stream bandwidth
//    (typical for 2S Sandy Bridge); the MIC fractions are lower per unit of
//    peak (KNC reached ~35-40% of its 320 GB/s in practice, cf. McCalpin's
//    published STREAM results for KNC).
//  * The CPU (AVX) kernels have **no streaming stores** — the paper adds
//    them only in the MIC port (Section V-B5) — so CPU writes pay the
//    read-for-ownership traffic; the cost model adds it (see cost_model.cpp).
//    This asymmetry is what makes the store-heavy derivativeSum the
//    biggest MIC win, exactly as in Figure 3.
//  * sites_half_saturation — in-order KNC cores need long streams to hide
//    memory latency; 4 hardware threads/core only partially compensate.
//    400 sites/worker (≈51 KB) for half efficiency places the CPU/MIC
//    crossover at ≈100 K sites as in Table III and reproduces the paper's
//    observation that per-thread work on small alignments is too small
//    (Section VI-B2); out-of-order Xeons saturate almost immediately.
//  * forkjoin_region_seconds — an OpenMP fork-join across 118 threads on
//    KNC costs ~20 µs (Intel's own measurements of KMP barriers on KNC are
//    15-25 µs); the CPU configuration runs one single-threaded rank per
//    core, so it pays no in-kernel barrier at all (ExaML's design).
//  * allreduce latencies — Section VI-B3 measures ~20 µs for MIC↔MIC over
//    PCIe with Intel MPI 4.1.2 and <5 µs between InfiniBand nodes; we use
//    2 µs for shared-memory CPU ranks, 6 µs between the two ranks of one
//    card, and 150 µs for the full 4-rank dual-card collective (see
//    cost_model.hpp for the justification of the multiplier).

PlatformSpec xeon_e5_2630() {
  PlatformSpec spec;
  spec.name = "2S Xeon E5-2630";
  spec.kind = PlatformKind::kCpu;
  spec.peak_dp_gflops = 220.0;
  spec.cores = 12;
  spec.clock_ghz = 2.30;
  spec.memory_gb = 32.0;
  spec.memory_bandwidth_gbs = 85.2;
  spec.max_tdp_watts = 190.0;
  spec.price_usd = 1224.0;
  spec.kernel_workers = 12;  // ExaML: one MPI rank per physical core
  spec.vector_width_doubles = 4;
  spec.kernel_bandwidth_fraction = {0.60, 0.60, 0.60, 0.60};
  spec.flops_fraction = 0.80;
  spec.sites_half_saturation = 30.0;
  spec.forkjoin_region_seconds = 0.0;
  spec.allreduce_intra_seconds = 2e-6;
  return spec;
}

PlatformSpec xeon_e5_2680() {
  PlatformSpec spec = xeon_e5_2630();
  spec.name = "2S Xeon E5-2680";
  spec.peak_dp_gflops = 346.0;
  spec.cores = 16;
  spec.clock_ghz = 2.70;
  spec.memory_bandwidth_gbs = 102.4;
  spec.max_tdp_watts = 260.0;
  spec.price_usd = 3486.0;
  spec.kernel_workers = 16;
  return spec;
}

PlatformSpec xeon_phi_5110p() {
  PlatformSpec spec;
  spec.name = "1S Xeon Phi 5110P";
  spec.kind = PlatformKind::kMic;
  spec.peak_dp_gflops = 1074.0;
  spec.cores = 60;
  spec.clock_ghz = 1.053;
  spec.memory_gb = 8.0;
  spec.memory_bandwidth_gbs = 320.0;
  spec.max_tdp_watts = 225.0;
  spec.price_usd = 2649.0;
  spec.kernel_workers = 236;  // 2 MPI ranks × 118 OpenMP threads
  spec.vector_width_doubles = 8;
  // Per-kernel fractions calibrated to Figure 3 (see notes above):
  // newview 0.28, evaluate 0.36, derivativeSum 0.38, derivativeCore 0.39.
  spec.kernel_bandwidth_fraction = {0.28, 0.36, 0.38, 0.39};
  spec.flops_fraction = 0.70;
  spec.sites_half_saturation = 400.0;
  spec.forkjoin_region_seconds = 20e-6;
  spec.allreduce_intra_seconds = 6e-6;
  return spec;
}

PlatformSpec xeon_phi_5110p_split(int ranks_per_card, int threads_per_rank) {
  PlatformSpec spec = xeon_phi_5110p();
  spec.kernel_workers = ranks_per_card * threads_per_rank;
  // OpenMP tree barrier: ~3 µs per doubling of the thread count on KNC
  // (118 threads → ~21 µs, matching the measured KMP barrier range).
  spec.forkjoin_region_seconds =
      (threads_per_rank > 1) ? 3e-6 * std::log2(static_cast<double>(threads_per_rank)) : 0.0;
  // MPI Allreduce: logarithmic in the rank count, with a steep penalty once
  // ranks oversubscribe the 60 physical cores (each rank carries an MPI
  // progress engine; the paper observed a "substantial slowdown" at 120
  // pure-MPI ranks, Section V-D).
  const double oversubscription =
      1.0 + std::pow(static_cast<double>(ranks_per_card) / 20.0, 1.5);
  spec.allreduce_intra_seconds =
      (ranks_per_card > 1)
          ? 3e-6 * std::log2(static_cast<double>(ranks_per_card) + 1.0) * oversubscription
          : 0.0;
  return spec;
}

PlatformSpec nvidia_k20() {
  PlatformSpec spec;
  spec.name = "NVIDIA K20 (ref.)";
  spec.kind = PlatformKind::kGpu;
  spec.peak_dp_gflops = 1170.0;
  spec.cores = 2496;
  spec.clock_ghz = 0.706;
  spec.memory_gb = 5.0;
  spec.memory_bandwidth_gbs = 208.0;
  spec.max_tdp_watts = 225.0;
  spec.price_usd = 2800.0;
  spec.kernel_workers = 0;  // never simulated; reference row only
  spec.vector_width_doubles = 0;
  return spec;
}

std::vector<PlatformSpec> table1_platforms() {
  // The paper also lists a dual-card row (2S Xeon Phi 5110P) that simply
  // doubles the single card; the cost model composes cards explicitly, so
  // the synthetic row here is for display parity with Table I.
  PlatformSpec dual = xeon_phi_5110p();
  dual.name = "2S Xeon Phi 5110P";
  dual.peak_dp_gflops *= 2;
  dual.cores *= 2;
  dual.memory_gb *= 2;
  dual.memory_bandwidth_gbs *= 2;
  dual.max_tdp_watts *= 2;
  dual.price_usd *= 2;
  return {xeon_e5_2630(), xeon_e5_2680(), xeon_phi_5110p(), dual, nvidia_k20()};
}

std::string format_table1() {
  std::ostringstream out;
  out << "Table I: Specifications of CPUs and accelerators used for performance evaluation\n";
  out << std::left << std::setw(20) << "(Co-)processor" << std::right << std::setw(15)
      << "Peak DP GFLOPS" << std::setw(14) << "No. of cores" << std::setw(12) << "Core clock"
      << std::setw(9) << "Memory" << std::setw(13) << "Memory BW" << std::setw(9) << "Max TDP"
      << std::setw(15) << "Approx. price" << "\n";
  for (const auto& spec : table1_platforms()) {
    out << std::left << std::setw(20) << spec.name << std::right << std::setw(15) << std::fixed
        << std::setprecision(0) << spec.peak_dp_gflops << std::setw(14) << spec.cores
        << std::setw(9) << std::setprecision(3) << spec.clock_ghz << " GHz" << std::setw(6)
        << std::setprecision(0) << spec.memory_gb << " GB" << std::setw(8)
        << std::setprecision(1) << spec.memory_bandwidth_gbs << " GB/s" << std::setw(6)
        << std::setprecision(0) << spec.max_tdp_watts << " W" << std::setw(10) << "$ "
        << spec.price_usd << "\n";
  }
  out << "1S = single slot, 2S = dual slot; NVIDIA K20 listed for reference only\n";
  return out.str();
}

std::string format_table2() {
  std::ostringstream out;
  out << "Table II: Software configuration of test systems (original study -> this reproduction)\n";
  out << "  Xeon E5-2630 : Linux 2.6.32, gcc 4.7.0, Intel MPI 4.1.2.040  -> simulated platform\n";
  out << "  Xeon E5-2680 : Linux 3.0.93, gcc 4.7.3, Intel MPI 4.1.1.036  -> simulated platform\n";
  out << "  Xeon Phi     : Linux 2.6.32, icc 13.1.3, Intel MPI 4.1.2.040 -> simulated platform\n";
  out << "  This host    : real kernels (scalar/AVX2/AVX-512F), OpenMP, in-process minimpi;\n";
  out << "                 platform timings are model-predicted from real kernel traces\n";
  return out.str();
}

}  // namespace miniphi::platform
