// Hardware platform descriptors — the data of the paper's Table I, plus the
// per-platform efficiency parameters the cost model needs.
//
// We have no physical Xeon Phi (the 5110P has been discontinued for a
// decade) and no dual-socket Xeons, so execution time on these platforms is
// *simulated*: the published peak numbers come straight from Table I, and
// the handful of efficiency/latency parameters are calibrated once against
// the paper's kernel-level measurements (Figure 3) and published latency
// measurements (Section VI-B3) — see cost_model.cpp for the calibration
// notes.  Everything downstream (Table III, Figures 4/5) is *predicted*
// from these micro-level inputs plus real kernel-invocation traces.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace miniphi::platform {

/// Hardware platform class, deciding which kernel flavor runs on it.
enum class PlatformKind {
  kCpu,  ///< out-of-order x86 cores, 256-bit AVX kernels, no streaming stores
  kMic,  ///< in-order many-core, 512-bit kernels with streaming stores
  kGpu,  ///< listed for reference only (Table I includes a K20)
};

struct PlatformSpec {
  std::string name;
  PlatformKind kind = PlatformKind::kCpu;

  // --- Published Table I data ---
  double peak_dp_gflops = 0.0;
  int cores = 0;
  double clock_ghz = 0.0;
  double memory_gb = 0.0;
  double memory_bandwidth_gbs = 0.0;
  double max_tdp_watts = 0.0;
  double price_usd = 0.0;

  // --- Execution shape ---
  int kernel_workers = 0;        ///< workers the PLF uses (CPU: ranks = cores;
                                 ///< MIC: 2 ranks × 118 OpenMP threads = 236)
  int vector_width_doubles = 0;  ///< 4 (AVX) or 8 (MIC)

  // --- Calibrated efficiency/latency parameters (see cost_model.cpp) ---
  /// Fraction of peak memory bandwidth each kernel's streaming loop reaches
  /// at large block sizes, indexed by core::Kernel order
  /// (newview, evaluate, derivativeSum, derivativeCore).
  std::array<double, 4> kernel_bandwidth_fraction{};
  /// Fraction of peak flops reachable by the kernel op mix.
  double flops_fraction = 0.8;
  /// Per-worker site count at which streaming efficiency reaches 50% — the
  /// latency/concurrency ramp; in-order MIC cores need far larger blocks.
  double sites_half_saturation = 30.0;
  /// Cost of one intra-node fork-join / OpenMP barrier region at full
  /// worker count (seconds); zero when each rank is single-threaded.
  double forkjoin_region_seconds = 0.0;
  /// Small-message Allreduce latency between ranks on the same device.
  double allreduce_intra_seconds = 2e-6;
};

/// Table I rows.
PlatformSpec xeon_e5_2630();   ///< 2S Xeon E5-2630 (secondary CPU baseline)
PlatformSpec xeon_e5_2680();   ///< 2S Xeon E5-2680 (primary CPU baseline)
PlatformSpec xeon_phi_5110p(); ///< one Xeon Phi 5110P card (2 ranks × 118 threads)

/// Xeon Phi with an explicit MPI-ranks × OpenMP-threads decomposition per
/// card (ranks*threads workers).  Synchronization costs scale with the
/// split: the per-kernel fork-join barrier grows with the thread count and
/// the Allreduce grows with the rank count (strongly, once ranks
/// oversubscribe the 60 physical cores) — the trade-off of Section V-D.
PlatformSpec xeon_phi_5110p_split(int ranks_per_card, int threads_per_rank);
PlatformSpec nvidia_k20();     ///< reference row only (never simulated)

/// All rows in Table I order (including the K20 reference row).
std::vector<PlatformSpec> table1_platforms();

/// Renders the paper's Table I from the descriptors.
std::string format_table1();

/// Renders the paper's Table II (the software stack of the original study,
/// annotated with what this reproduction actually runs).
std::string format_table2();

}  // namespace miniphi::platform
