#include "src/search/bootstrap.hpp"

#include <atomic>
#include <iomanip>
#include <functional>
#include <set>
#include <sstream>
#include <thread>

#include "src/core/make_evaluator.hpp"
#include "src/tree/parsimony.hpp"
#include "src/util/error.hpp"

namespace miniphi::search {

bio::PatternSet bootstrap_resample(const bio::PatternSet& patterns, Rng& rng) {
  // Multinomial draw of N sites over the patterns, proportional to their
  // original weights, via the site→pattern map (exact classical bootstrap).
  bio::PatternSet replicate = patterns;
  std::fill(replicate.weights.begin(), replicate.weights.end(), 0u);
  const auto total = static_cast<std::uint64_t>(patterns.site_to_pattern.size());
  MINIPHI_CHECK(total > 0, "bootstrap: pattern set has no site map");
  for (std::uint64_t draw = 0; draw < total; ++draw) {
    const auto site = rng.below(total);
    ++replicate.weights[patterns.site_to_pattern[site]];
  }
  return replicate;
}

namespace {

/// Taxon set behind `slot` as a canonical split (side without taxon 0).
void collect_splits_with_slots(const tree::Tree& tree,
                               std::map<tree::Split, const tree::Slot*>& out) {
  const auto splits = tree::tree_splits(tree);
  // tree_splits gives the set; to attach labels we also need the edge for
  // each split, so recompute per edge.
  const int ntaxa = tree.taxon_count();
  const std::size_t words = (static_cast<std::size_t>(ntaxa) + 63) / 64;
  const std::function<tree::Split(const tree::Slot*)> taxa_behind =
      [&](const tree::Slot* slot) -> tree::Split {
    tree::Split split(words, 0);
    if (slot->is_tip()) {
      split[static_cast<std::size_t>(slot->node_id) / 64] |=
          std::uint64_t{1} << (slot->node_id % 64);
      return split;
    }
    const auto a = taxa_behind(slot->child1());
    const auto b = taxa_behind(slot->child2());
    for (std::size_t w = 0; w < words; ++w) split[w] = a[w] | b[w];
    return split;
  };
  for (const tree::Slot* edge : tree.edges()) {
    if (edge->is_tip() || edge->back->is_tip()) continue;  // trivial
    tree::Split split = taxa_behind(edge);
    if (split[0] & 1u) {  // canonicalize: complement if it contains taxon 0
      for (std::size_t w = 0; w < words; ++w) split[w] = ~split[w];
      const int tail = ntaxa % 64;
      if (tail != 0) split.back() &= (std::uint64_t{1} << tail) - 1;
    }
    out.emplace(std::move(split), edge);
  }
  MINIPHI_ASSERT(out.size() == splits.size());
}

/// Newick with inner-node support labels (percent) on the reference tree.
std::string annotate(const tree::Tree& tree, const std::vector<std::string>& names,
                     const std::map<tree::Split, double>& support,
                     const std::map<tree::Split, const tree::Slot*>& split_edges) {
  // Invert: edge (slot pointer, both directions) → percent label.
  std::map<const tree::Slot*, int> labels;
  for (const auto& [split, value] : support) {
    const auto it = split_edges.find(split);
    if (it == split_edges.end()) continue;
    const int percent = static_cast<int>(value * 100.0 + 0.5);
    labels[it->second] = percent;
    labels[it->second->back] = percent;
  }
  std::ostringstream out;
  out << std::setprecision(17);
  const std::function<void(const tree::Slot*)> serialize = [&](const tree::Slot* slot) {
    if (slot->is_tip()) {
      out << names[static_cast<std::size_t>(slot->node_id)];
      return;
    }
    out << '(';
    serialize(slot->child1());
    out << ':' << slot->next->length << ',';
    serialize(slot->child2());
    out << ':' << slot->next->next->length << ')';
    const auto it = labels.find(slot);
    if (it != labels.end()) out << it->second;
  };
  const tree::Slot* root = tree.tip(0);
  out << '(' << names[0] << ":0,";
  serialize(root->back);
  out << ':' << root->length << ");";
  return out.str();
}

}  // namespace

BootstrapResult run_bootstrap(const bio::PatternSet& patterns, const model::GtrModel& model,
                              const tree::Tree& reference,
                              const std::vector<std::string>& taxon_names,
                              const BootstrapOptions& options) {
  MINIPHI_CHECK(options.replicates >= 1, "bootstrap: need at least one replicate");
  MINIPHI_CHECK(options.threads >= 1, "bootstrap: need at least one thread");

  // Pre-generate per-replicate seeds so results are thread-count invariant.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(options.replicates));
  {
    Rng seeder(options.seed);
    for (auto& seed : seeds) seed = seeder();
  }

  std::vector<std::set<tree::Split>> replicate_splits(
      static_cast<std::size_t>(options.replicates));
  std::atomic<int> next{0};
  const auto worker = [&] {
    for (;;) {
      const int replicate = next.fetch_add(1);
      if (replicate >= options.replicates) return;
      Rng rng(seeds[static_cast<std::size_t>(replicate)]);
      const auto resampled = bootstrap_resample(patterns, rng);
      tree::Tree tree = tree::parsimony_starting_tree(resampled, rng);
      const auto evaluator = core::make_evaluator(resampled, model, tree);
      (void)run_tree_search(*evaluator, tree, options.search);
      replicate_splits[static_cast<std::size_t>(replicate)] = tree::tree_splits(tree);
    }
  };
  if (options.threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    for (int t = 0; t < options.threads; ++t) threads.emplace_back(worker);
    for (auto& thread : threads) thread.join();
  }

  // Support of the reference tree's splits.
  std::map<tree::Split, const tree::Slot*> split_edges;
  collect_splits_with_slots(reference, split_edges);

  BootstrapResult result;
  result.replicates = options.replicates;
  for (const auto& [split, edge] : split_edges) {
    (void)edge;
    int hits = 0;
    for (const auto& splits : replicate_splits) {
      if (splits.count(split)) ++hits;
    }
    result.support[split] = static_cast<double>(hits) / options.replicates;
  }
  result.annotated_newick = annotate(reference, taxon_names, result.support, split_edges);
  return result;
}

}  // namespace miniphi::search
