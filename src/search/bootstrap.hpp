// Nonparametric bootstrap (Felsenstein 1985) — the standard way RAxML-class
// tools attach confidence values to the branches of an ML tree, and the
// second half of every production phylogenetics workflow (the paper's
// programs ship it; large-scale bootstrapping is a primary driver of the
// compute demand the paper motivates with).
//
// Sites are resampled with replacement; because identical columns are
// already aggregated into weighted patterns, one replicate is simply a new
// multinomial weight vector over the same pattern set — no sequence data is
// copied.  Each replicate runs an independent (reduced-effort) ML search;
// the support of a branch in the reference tree is the fraction of
// replicate trees containing the same bipartition.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/bio/patterns.hpp"
#include "src/model/gtr.hpp"
#include "src/search/spr_search.hpp"
#include "src/tree/splits.hpp"

namespace miniphi::search {

/// One bootstrap replicate's weights: multinomial resample of the original
/// site multiset, expressed over the same patterns.
bio::PatternSet bootstrap_resample(const bio::PatternSet& patterns, Rng& rng);

struct BootstrapOptions {
  int replicates = 100;
  std::uint64_t seed = 42;
  /// Worker threads running replicates concurrently (each replicate is an
  /// independent search with its own engine — embarrassingly parallel, the
  /// same property the paper's Section VII highlights for the EPA).
  int threads = 1;
  /// Per-replicate search effort (bootstrap searches are conventionally
  /// cheaper than the reference search, as in RAxML's rapid bootstrap).
  SearchOptions search = [] {
    SearchOptions options;
    options.spr_radius = 3;
    options.max_rounds = 3;
    options.optimize_model = false;
    options.smoothing_passes = 2;
    return options;
  }();
};

struct BootstrapResult {
  int replicates = 0;
  /// Support per non-trivial split of the reference tree, in [0, 1].
  std::map<tree::Split, double> support;
  /// Reference tree with support values as inner-node labels (percent).
  std::string annotated_newick;
};

/// Runs `options.replicates` bootstrap searches under the (fixed) model and
/// annotates the reference tree.  Deterministic given options.seed,
/// independent of thread count.
BootstrapResult run_bootstrap(const bio::PatternSet& patterns, const model::GtrModel& model,
                              const tree::Tree& reference,
                              const std::vector<std::string>& taxon_names,
                              const BootstrapOptions& options = {});

}  // namespace miniphi::search
