#include "src/search/brent.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace miniphi::search {

BrentResult brent_minimize(const std::function<double(double)>& f, double lower, double upper,
                           double tolerance, int max_iterations) {
  MINIPHI_CHECK(lower < upper, "brent_minimize: empty interval");
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt 5)/2

  BrentResult result;
  double a = lower;
  double b = upper;
  double x = a + kGolden * (b - a);
  double fx = f(x);
  result.evaluations = 1;
  // The objective may be non-finite on part of the domain (a likelihood
  // probed at a numerically hostile parameter value returns NaN).  A
  // non-finite start would poison every comparison below, so scan interior
  // grid points until a finite value anchors the search.
  for (int probe = 1; !std::isfinite(fx) && probe < 16; ++probe) {
    x = a + (b - a) * static_cast<double>(probe) / 16.0;
    fx = f(x);
    ++result.evaluations;
  }
  MINIPHI_CHECK(std::isfinite(fx),
                "brent_minimize: objective non-finite at every probed start point");
  double w = x;
  double v = x;
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const double midpoint = 0.5 * (a + b);
    const double tol1 = tolerance * std::abs(x) + 1e-12;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - midpoint) <= tol2 - 0.5 * (b - a)) break;

    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Try a parabolic step through (v, w, x).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_old = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (midpoint > x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < midpoint) ? b - x : a - x;
      d = kGolden * e;
    }

    const double u = (std::abs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    ++result.evaluations;

    if (!std::isfinite(fu)) {
      // Treat the probe as worse than everything: shrink the bracket away
      // from it and forget it — letting NaN/∞ into the (v, w) parabolic
      // memory would poison later steps.
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      continue;
    }

    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }

  // The golden-section start point and all probe points are strictly
  // interior, so a monotone objective (minimum at a boundary) would
  // otherwise return an interior point ~tolerance away from the optimum.
  // Compare against the actual endpoints and keep the best of the three;
  // strict < keeps the interior point on ties.
  const double f_lower = f(lower);
  const double f_upper = f(upper);
  result.evaluations += 2;
  if (std::isfinite(f_lower) && f_lower < fx) {
    x = lower;
    fx = f_lower;
  }
  if (std::isfinite(f_upper) && f_upper < fx) {
    x = upper;
    fx = f_upper;
  }

  result.x = x;
  result.value = fx;
  return result;
}

}  // namespace miniphi::search
