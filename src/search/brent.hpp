// One-dimensional function minimization (Brent's method) used for model
// parameter optimization (Γ shape α, GTR exchangeabilities), exactly as in
// RAxML's optimizeModel machinery.
#pragma once

#include <functional>

namespace miniphi::search {

struct BrentResult {
  double x = 0.0;        ///< argmin
  double value = 0.0;    ///< f(argmin)
  int evaluations = 0;   ///< number of function calls
};

/// Minimizes f over [lower, upper] to the given relative tolerance.
/// Combines golden-section bracketing with parabolic interpolation; never
/// evaluates outside the interval.  f is called O(log(1/tol)) times.
BrentResult brent_minimize(const std::function<double(double)>& f, double lower, double upper,
                           double tolerance = 1e-4, int max_iterations = 100);

}  // namespace miniphi::search
