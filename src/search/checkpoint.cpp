#include "src/search/checkpoint.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/io/newick.hpp"
#include "src/util/error.hpp"

namespace miniphi::search {
namespace {

constexpr const char* kMagic = "miniphi-checkpoint";
constexpr int kVersion = 1;

}  // namespace

tree::Tree Checkpoint::restore_tree() const {
  const auto ast = io::parse_newick(tree_newick);
  return tree::Tree::from_newick(*ast, taxon_names);
}

Checkpoint make_checkpoint(const tree::Tree& tree, const std::vector<std::string>& taxon_names,
                           const model::GtrParams& params, int rounds_completed,
                           double log_likelihood, std::uint64_t seed) {
  Checkpoint checkpoint;
  checkpoint.taxon_names = taxon_names;
  checkpoint.tree_newick = tree.to_newick(taxon_names);
  checkpoint.model_params = params;
  checkpoint.rounds_completed = rounds_completed;
  checkpoint.log_likelihood = log_likelihood;
  checkpoint.seed = seed;
  return checkpoint;
}

void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  out << kMagic << ' ' << kVersion << '\n';
  out << std::setprecision(17);
  out << "taxa " << checkpoint.taxon_names.size() << '\n';
  for (const auto& name : checkpoint.taxon_names) out << name << '\n';
  out << "tree " << checkpoint.tree_newick << '\n';
  out << "rates";
  for (const double rate : checkpoint.model_params.exchangeabilities) out << ' ' << rate;
  out << '\n';
  out << "freqs";
  for (const double freq : checkpoint.model_params.frequencies) out << ' ' << freq;
  out << '\n';
  out << "alpha " << checkpoint.model_params.alpha << '\n';
  out << "progress " << checkpoint.rounds_completed << ' ' << checkpoint.log_likelihood << '\n';
  out << "seed " << checkpoint.seed << '\n';
}

void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint) {
  // Write-then-rename would need platform code; a temp-suffix + rename via
  // stdio keeps interrupted writes from clobbering the previous checkpoint.
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp);
    MINIPHI_CHECK(out.good(), "cannot open checkpoint file '" + temp + "' for writing");
    write_checkpoint(out, checkpoint);
    MINIPHI_CHECK(out.good(), "failed writing checkpoint to '" + temp + "'");
  }
  MINIPHI_CHECK(std::rename(temp.c_str(), path.c_str()) == 0,
                "failed to move checkpoint into place at '" + path + "'");
}

Checkpoint read_checkpoint(std::istream& in) {
  Checkpoint checkpoint;
  std::string magic;
  int version = 0;
  in >> magic >> version;
  MINIPHI_CHECK(magic == kMagic, "not a miniphi checkpoint file");
  MINIPHI_CHECK(version == kVersion,
                "unsupported checkpoint version " + std::to_string(version));

  std::string keyword;
  std::size_t ntaxa = 0;
  in >> keyword >> ntaxa;
  MINIPHI_CHECK(keyword == "taxa" && ntaxa >= 3, "checkpoint: malformed taxa header");
  checkpoint.taxon_names.resize(ntaxa);
  for (auto& name : checkpoint.taxon_names) {
    in >> name;
    MINIPHI_CHECK(!in.fail() && !name.empty(), "checkpoint: truncated taxon list");
  }

  in >> keyword;
  MINIPHI_CHECK(keyword == "tree", "checkpoint: expected tree record");
  in >> checkpoint.tree_newick;
  MINIPHI_CHECK(!checkpoint.tree_newick.empty() && checkpoint.tree_newick.back() == ';',
                "checkpoint: malformed tree record");

  in >> keyword;
  MINIPHI_CHECK(keyword == "rates", "checkpoint: expected rates record");
  for (auto& rate : checkpoint.model_params.exchangeabilities) {
    MINIPHI_CHECK(static_cast<bool>(in >> rate), "checkpoint: truncated rates");
  }
  in >> keyword;
  MINIPHI_CHECK(keyword == "freqs", "checkpoint: expected freqs record");
  for (auto& freq : checkpoint.model_params.frequencies) {
    MINIPHI_CHECK(static_cast<bool>(in >> freq), "checkpoint: truncated freqs");
  }
  in >> keyword >> checkpoint.model_params.alpha;
  MINIPHI_CHECK(keyword == "alpha" && !in.fail(), "checkpoint: expected alpha record");
  in >> keyword >> checkpoint.rounds_completed >> checkpoint.log_likelihood;
  MINIPHI_CHECK(keyword == "progress" && !in.fail(), "checkpoint: expected progress record");
  in >> keyword >> checkpoint.seed;
  MINIPHI_CHECK(keyword == "seed" && !in.fail(), "checkpoint: expected seed record");
  return checkpoint;
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  MINIPHI_CHECK(in.good(), "cannot open checkpoint file '" + path + "'");
  return read_checkpoint(in);
}

}  // namespace miniphi::search
