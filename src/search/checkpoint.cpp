#include "src/search/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <string_view>

#include "src/io/newick.hpp"
#include "src/util/error.hpp"

namespace miniphi::search {
namespace {

constexpr const char* kMagic = "miniphi-checkpoint";

/// FNV-1a 64-bit over the serialized body; cheap, and any truncation or
/// bit flip in a text checkpoint changes it.
std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void write_body(std::ostream& out, const Checkpoint& checkpoint) {
  out << kMagic << ' ' << kCheckpointFormatVersion << '\n';
  out << std::setprecision(17);
  out << "taxa " << checkpoint.taxon_names.size() << '\n';
  for (const auto& name : checkpoint.taxon_names) out << name << '\n';
  out << "tree " << checkpoint.tree_newick << '\n';
  out << "rates";
  for (const double rate : checkpoint.model_params.exchangeabilities) out << ' ' << rate;
  out << '\n';
  out << "freqs";
  for (const double freq : checkpoint.model_params.frequencies) out << ' ' << freq;
  out << '\n';
  out << "alpha " << checkpoint.model_params.alpha << '\n';
  out << "progress " << checkpoint.rounds_completed << ' ' << checkpoint.log_likelihood << '\n';
  out << "seed " << checkpoint.seed << '\n';
}

/// Parses the records after the magic/version line (which the caller has
/// already consumed and validated).
void parse_body(std::istream& in, Checkpoint& checkpoint) {
  std::string keyword;
  std::size_t ntaxa = 0;
  in >> keyword >> ntaxa;
  MINIPHI_CHECK(keyword == "taxa" && ntaxa >= 3, "checkpoint: malformed taxa header");
  checkpoint.taxon_names.resize(ntaxa);
  for (auto& name : checkpoint.taxon_names) {
    in >> name;
    MINIPHI_CHECK(!in.fail() && !name.empty(), "checkpoint: truncated taxon list");
  }

  in >> keyword;
  MINIPHI_CHECK(keyword == "tree", "checkpoint: expected tree record");
  in >> checkpoint.tree_newick;
  MINIPHI_CHECK(!checkpoint.tree_newick.empty() && checkpoint.tree_newick.back() == ';',
                "checkpoint: malformed tree record");

  in >> keyword;
  MINIPHI_CHECK(keyword == "rates", "checkpoint: expected rates record");
  for (auto& rate : checkpoint.model_params.exchangeabilities) {
    MINIPHI_CHECK(static_cast<bool>(in >> rate), "checkpoint: truncated rates");
  }
  in >> keyword;
  MINIPHI_CHECK(keyword == "freqs", "checkpoint: expected freqs record");
  for (auto& freq : checkpoint.model_params.frequencies) {
    MINIPHI_CHECK(static_cast<bool>(in >> freq), "checkpoint: truncated freqs");
  }
  in >> keyword >> checkpoint.model_params.alpha;
  MINIPHI_CHECK(keyword == "alpha" && !in.fail(), "checkpoint: expected alpha record");
  in >> keyword >> checkpoint.rounds_completed >> checkpoint.log_likelihood;
  MINIPHI_CHECK(keyword == "progress" && !in.fail(), "checkpoint: expected progress record");
  in >> keyword >> checkpoint.seed;
  MINIPHI_CHECK(keyword == "seed" && !in.fail(), "checkpoint: expected seed record");
}

}  // namespace

tree::Tree Checkpoint::restore_tree() const {
  const auto ast = io::parse_newick(tree_newick);
  return tree::Tree::from_newick(*ast, taxon_names);
}

Checkpoint make_checkpoint(const tree::Tree& tree, const std::vector<std::string>& taxon_names,
                           const model::GtrParams& params, int rounds_completed,
                           double log_likelihood, std::uint64_t seed) {
  Checkpoint checkpoint;
  checkpoint.taxon_names = taxon_names;
  checkpoint.tree_newick = tree.to_newick(taxon_names);
  checkpoint.model_params = params;
  checkpoint.rounds_completed = rounds_completed;
  checkpoint.log_likelihood = log_likelihood;
  checkpoint.seed = seed;
  return checkpoint;
}

void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  std::ostringstream body;
  write_body(body, checkpoint);
  const std::string serialized = body.str();
  out << serialized << "checksum " << fnv1a(serialized) << '\n';
}

std::size_t checkpoint_byte_size(const Checkpoint& checkpoint) {
  std::ostringstream out;
  write_checkpoint(out, checkpoint);
  return out.str().size();
}

void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint) {
  // Crash-safe: the full content (body + checksum) lands in a temp file
  // first, is flushed and closed, and only then renamed over the previous
  // checkpoint — a crash mid-write can never clobber the last good state,
  // and a crash mid-rename leaves either the old or the new file intact.
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp);
    MINIPHI_CHECK(out.good(), "cannot open checkpoint file '" + temp + "' for writing");
    write_checkpoint(out, checkpoint);
    out.flush();
    MINIPHI_CHECK(out.good(), "failed writing checkpoint to '" + temp + "'");
  }
  MINIPHI_CHECK(std::rename(temp.c_str(), path.c_str()) == 0,
                "failed to move checkpoint into place at '" + path + "'");
}

Checkpoint read_checkpoint(std::istream& in) {
  const std::string content{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  int version = 0;
  {
    std::istringstream header(content);
    std::string magic;
    header >> magic >> version;
    MINIPHI_CHECK(magic == kMagic, "not a miniphi checkpoint file");
    MINIPHI_CHECK(version <= kCheckpointFormatVersion,
                  "checkpoint version " + std::to_string(version) +
                      " is newer than this build supports (" +
                      std::to_string(kCheckpointFormatVersion) + "); upgrade miniphi to read it");
    MINIPHI_CHECK(version == kCheckpointFormatVersion,
                  "unsupported checkpoint version " + std::to_string(version) +
                      " (version " + std::to_string(kCheckpointFormatVersion) +
                      " added the integrity checksum; older files are not trusted)");
  }

  // Verify integrity before trusting any record: the file must end with a
  // complete (newline-terminated) checksum line covering everything that
  // precedes it.  Requiring the final newline means NO proper prefix of a
  // valid checkpoint is accepted — a cut at any byte reads as truncated.
  MINIPHI_CHECK(!content.empty() && content.back() == '\n',
                "checkpoint: missing trailing newline (truncated file?)");
  const auto pos = content.rfind("\nchecksum ");
  MINIPHI_CHECK(pos != std::string::npos,
                "checkpoint: missing checksum record (truncated file?)");
  const std::string body = content.substr(0, pos + 1);  // keep the trailing newline
  std::uint64_t stored = 0;
  {
    std::istringstream tail(content.substr(pos + 1));
    std::string keyword;
    tail >> keyword >> stored;
    MINIPHI_CHECK(keyword == "checksum" && !tail.fail(),
                  "checkpoint: malformed checksum record");
  }
  MINIPHI_CHECK(fnv1a(body) == stored,
                "checkpoint: checksum mismatch — file is corrupted or truncated");

  Checkpoint checkpoint;
  checkpoint.format_version = version;
  std::istringstream stream(body);
  {
    std::string magic;
    int header_version = 0;
    stream >> magic >> header_version;  // already validated above
  }
  parse_body(stream, checkpoint);
  return checkpoint;
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  MINIPHI_CHECK(in.good(), "cannot open checkpoint file '" + path + "'");
  return read_checkpoint(in);
}

}  // namespace miniphi::search
