// Search checkpointing.
//
// RAxML-Light's defining feature (its paper is subtitled "a tool for
// computing terabyte phylogenies") is checkpoint/restart: week-long searches
// on clusters must survive job time limits and node failures.  This module
// serializes the complete search state — taxon set, tree with branch
// lengths, GTR+Γ model, and progress counters — to a versioned, line-based
// text file, and restores it for seamless continuation.
//
// Durability: file writes go to a temp file that is renamed into place
// (atomic on POSIX — a crash never clobbers the previous checkpoint), and
// every checkpoint ends with a checksum line so read_checkpoint rejects
// truncated or corrupted files with a clear Error instead of garbage state.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/model/gtr.hpp"
#include "src/tree/tree.hpp"

namespace miniphi::search {

/// On-disk format version written into (and required from) the header line.
/// Version 2 appended the trailing checksum record; version-1 files (no
/// integrity check) are rejected rather than trusted.
inline constexpr int kCheckpointFormatVersion = 2;

struct Checkpoint {
  /// Format version the file was read with (kCheckpointFormatVersion for
  /// freshly captured checkpoints) — provenance for logs and tooling.
  int format_version = kCheckpointFormatVersion;
  std::vector<std::string> taxon_names;
  std::string tree_newick;  ///< topology + branch lengths
  model::GtrParams model_params;
  int rounds_completed = 0;
  double log_likelihood = 0.0;
  std::uint64_t seed = 0;  ///< original run seed (for provenance)

  /// Rebuilds the tree object from the stored Newick.
  [[nodiscard]] tree::Tree restore_tree() const;
};

/// Captures the current state of a run.
Checkpoint make_checkpoint(const tree::Tree& tree, const std::vector<std::string>& taxon_names,
                           const model::GtrParams& params, int rounds_completed,
                           double log_likelihood, std::uint64_t seed);

void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint);
void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint);

/// Serialized size in bytes (body + checksum record), exactly as
/// write_checkpoint would produce — restore-cost attribution for the
/// ckpt.restore.bytes metric.
[[nodiscard]] std::size_t checkpoint_byte_size(const Checkpoint& checkpoint);

/// Throws miniphi::Error on version mismatch, checksum failure (corrupted
/// or truncated file), or malformed content.
Checkpoint read_checkpoint(std::istream& in);
Checkpoint read_checkpoint_file(const std::string& path);

}  // namespace miniphi::search
