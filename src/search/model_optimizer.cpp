#include "src/search/model_optimizer.hpp"

namespace miniphi::search {

ModelOptimizerResult optimize_alpha(core::Evaluator& evaluator, tree::Slot* root_edge,
                                    double tolerance) {
  const obs::ScopedSpan span("search:model");
  ModelOptimizerResult result;
  const auto f = [&](double log_alpha) {
    evaluator.set_alpha(std::exp(log_alpha));
    ++result.evaluations;
    return -evaluator.log_likelihood(root_edge);
  };
  const auto best =
      brent_minimize(f, std::log(kMinAlphaParam), std::log(kMaxAlphaParam), tolerance);
  evaluator.set_alpha(std::exp(best.x));
  result.log_likelihood = evaluator.log_likelihood(root_edge);
  ++result.evaluations;
  return result;
}

}  // namespace miniphi::search
