// Likelihood-based model parameter optimization.
//
// Two levels:
//  * optimize_alpha()  — generic Brent search on the Γ shape, usable with
//    ANY evaluator (DNA or protein), through the Evaluator interface.
//  * optimize_model()  — full coordinate optimization (α + GTR
//    exchangeabilities), a header template over the concrete engine types
//    (LikelihoodEngine, ForkJoinEvaluator, DistributedEvaluator) which all
//    expose model()/set_model() for the DNA GTR family.  This matches
//    RAxML's optimizeModel step.  Frequencies stay at their empirical
//    estimates (RAxML's default for DNA).
#pragma once

#include <cmath>

#include "src/core/evaluator.hpp"
#include "src/model/gtr.hpp"
#include "src/obs/span_trace.hpp"
#include "src/search/brent.hpp"
#include "src/util/error.hpp"

namespace miniphi::search {

struct ModelOptimizerOptions {
  bool optimize_alpha = true;
  bool optimize_rates = true;
  double tolerance = 1e-3;  ///< Brent tolerance on the (log) parameter
  int max_passes = 2;       ///< coordinate sweeps over all parameters
};

struct ModelOptimizerResult {
  double log_likelihood = 0.0;
  int evaluations = 0;  ///< full-likelihood evaluations spent
};

/// Optimization bounds (log-scale Brent).
inline constexpr double kMinAlphaParam = 0.02;
inline constexpr double kMaxAlphaParam = 100.0;
inline constexpr double kMinRateParam = 0.02;
inline constexpr double kMaxRateParam = 100.0;

/// Γ-shape-only optimization via the Evaluator interface (model-family
/// agnostic — this is all a general/protein engine needs).
ModelOptimizerResult optimize_alpha(core::Evaluator& evaluator, tree::Slot* root_edge,
                                    double tolerance = 1e-3);

/// Full GTR optimization: α plus the five free exchangeabilities, as
/// coordinate-wise Brent sweeps.  `EngineT` must provide
/// `const model::GtrModel& model()` and `set_model(const model::GtrModel&)`.
template <typename EngineT>
ModelOptimizerResult optimize_model(EngineT& engine, tree::Slot* root_edge,
                                    const ModelOptimizerOptions& options = {}) {
  const obs::ScopedSpan span("search:model");
  ModelOptimizerResult result;
  model::GtrParams params = engine.model().params();

  const auto objective = [&](const model::GtrParams& candidate) {
    engine.set_model(model::GtrModel(candidate));
    ++result.evaluations;
    return -engine.log_likelihood(root_edge);
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    if (options.optimize_alpha) {
      const auto f = [&](double log_alpha) {
        model::GtrParams candidate = params;
        candidate.alpha = std::exp(log_alpha);
        return objective(candidate);
      };
      const auto best = brent_minimize(f, std::log(kMinAlphaParam), std::log(kMaxAlphaParam),
                                       options.tolerance);
      params.alpha = std::exp(best.x);
    }
    if (options.optimize_rates) {
      // The last exchangeability (GT) is the fixed reference rate.
      for (std::size_t i = 0; i + 1 < params.exchangeabilities.size(); ++i) {
        const auto f = [&](double log_rate) {
          model::GtrParams candidate = params;
          candidate.exchangeabilities[i] = std::exp(log_rate);
          return objective(candidate);
        };
        const auto best = brent_minimize(f, std::log(kMinRateParam), std::log(kMaxRateParam),
                                         options.tolerance);
        params.exchangeabilities[i] = std::exp(best.x);
      }
    }
  }

  engine.set_model(model::GtrModel(params));
  result.log_likelihood = engine.log_likelihood(root_edge);
  ++result.evaluations;
  return result;
}

/// Interface-level overload (the factory-seam path, PR 8): runs the same
/// coordinate sweeps through the Evaluator's GTR seam, so callers holding a
/// `std::unique_ptr<core::Evaluator>` from core::make_evaluator never name a
/// concrete engine type.  Requires an evaluator of the DNA GTR family
/// (Evaluator::gtr_model() non-null).
inline ModelOptimizerResult optimize_model(core::Evaluator& evaluator, tree::Slot* root_edge,
                                           const ModelOptimizerOptions& options = {}) {
  MINIPHI_CHECK(evaluator.gtr_model() != nullptr,
                "optimize_model: evaluator does not expose a linked GTR model");
  struct GtrSeam {
    core::Evaluator& inner;
    [[nodiscard]] const model::GtrModel& model() const { return *inner.gtr_model(); }
    void set_model(const model::GtrModel& model) { inner.set_gtr_model(model); }
    double log_likelihood(tree::Slot* edge) { return inner.log_likelihood(edge); }
  } seam{evaluator};
  return optimize_model(seam, root_edge, options);
}

}  // namespace miniphi::search
