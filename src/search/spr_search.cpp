#include "src/search/spr_search.hpp"

#include <algorithm>
#include <iterator>
#include <vector>

#include "src/core/engine.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span_trace.hpp"
#include "src/util/error.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

namespace miniphi::search {
namespace {

/// Invalidates the CLAs of every node incident to a topology change.
/// The incident-node lists routinely repeat ids (e.g. a pruned slot adjacent
/// to its own reinsertion edge), so deduplicate before invalidating —
/// engines may do non-idempotent bookkeeping per invalidation (the
/// site-repeats path drops and rebuilds class maps).
void invalidate_around(core::Evaluator& engine, const tree::Tree& tree,
                       std::initializer_list<int> node_ids) {
  int seen[8];
  int count = 0;
  MINIPHI_ASSERT(node_ids.size() <= std::size(seen));
  for (const int node_id : node_ids) {
    MINIPHI_ASSERT(node_id >= 0 && node_id < tree.node_count());
    if (std::find(seen, seen + count, node_id) != seen + count) continue;
    seen[count++] = node_id;
    engine.invalidate_node(node_id);
  }
}

/// Newton-optimizes the branches touched by an accepted regraft, with the
/// same bounds checks and deduplication as invalidate_around: the slot lists
/// can alias the same physical branch (each branch appears once per
/// direction), and optimize_branch is not idempotent in cost — every call
/// re-runs the full derivative protocol.
void optimize_around(core::Evaluator& engine, const tree::Tree& tree,
                     std::initializer_list<tree::Slot*> edges) {
  const tree::Slot* seen[8];
  int count = 0;
  MINIPHI_ASSERT(edges.size() <= std::size(seen));
  for (tree::Slot* edge : edges) {
    MINIPHI_ASSERT(edge != nullptr && edge->back != nullptr);
    MINIPHI_ASSERT(edge->node_id >= 0 && edge->node_id < tree.node_count());
    MINIPHI_ASSERT(edge->back->node_id >= 0 && edge->back->node_id < tree.node_count());
    const tree::Slot* key = std::min(edge, edge->back);  // direction-independent identity
    if (std::find(seen, seen + count, key) != seen + count) continue;
    seen[count++] = key;
    engine.optimize_branch(edge);
  }
}

struct GradMetricIds {
  obs::MetricId sweeps = 0;
  obs::MetricId edges = 0;
  obs::MetricId fallbacks = 0;
  obs::MetricId sweep_ns = 0;
};

GradMetricIds grad_metric_ids() {
  obs::Registry& registry = obs::Registry::instance();
  GradMetricIds ids;
  ids.sweeps = registry.counter("grad.sweeps");
  ids.edges = registry.counter("grad.edges");
  ids.fallbacks = registry.counter("grad.fallbacks");
  ids.sweep_ns = registry.histogram("grad.sweep_ns");
  return ids;
}

void note_gradient_fallback() {
  if (!obs::kMetricsCompiled) return;
  static const GradMetricIds ids = grad_metric_ids();
  obs::Registry::instance().add(ids.fallbacks, 1);
}

}  // namespace

double smooth_branches(core::Evaluator& engine, tree::Tree& tree, tree::Slot* root_edge,
                       int passes) {
  MINIPHI_ASSERT(root_edge != nullptr && root_edge->node_id >= 0 &&
                 root_edge->node_id < tree.node_count());
  std::vector<core::BranchGradient> gradient;
  if (!engine.gradient_all_branches(root_edge, gradient)) {
    return engine.optimize_all_branches(root_edge, passes);
  }

  double current = engine.log_likelihood(root_edge);
  const int max_sweeps = 16 * std::max(passes, 1);
  std::vector<double> saved;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    Timer timer;
    // The first sweep reuses the gradient from the support probe above.
    if (sweep > 0 && !engine.gradient_all_branches(root_edge, gradient)) break;
    saved.clear();
    for (const core::BranchGradient& g : gradient) saved.push_back(g.edge->length);
    for (const core::BranchGradient& g : gradient) {
      tree::Tree::set_length(g.edge,
                             core::LikelihoodEngine::newton_step(g.length, g.first, g.second));
    }
    for (const core::BranchGradient& g : gradient) {
      engine.invalidate_branch(g.edge->node_id);
      engine.invalidate_branch(g.edge->back->node_id);
    }
    const double next = engine.log_likelihood(root_edge);
    if (obs::kMetricsCompiled) {
      static const GradMetricIds ids = grad_metric_ids();
      obs::Registry& registry = obs::Registry::instance();
      registry.add(ids.sweeps, 1);
      registry.add(ids.edges, static_cast<std::int64_t>(gradient.size()));
      registry.observe(ids.sweep_ns, static_cast<std::int64_t>(timer.seconds() * 1e9));
    }
    if (!(next >= current - 1e-9)) {
      // The simultaneous updates are mutually blind; a collective overshoot
      // (or NaN) means this tree wants the one-at-a-time path.  Restore and
      // hand over.
      for (std::size_t i = 0; i < gradient.size(); ++i) {
        tree::Tree::set_length(gradient[i].edge, saved[i]);
      }
      for (const core::BranchGradient& g : gradient) {
        engine.invalidate_branch(g.edge->node_id);
        engine.invalidate_branch(g.edge->back->node_id);
      }
      note_gradient_fallback();
      return engine.optimize_all_branches(root_edge, passes);
    }
    const double gain = next - current;
    current = next;
    // Run sweeps to a tight stationary point: the per-branch Newton path is
    // near-idempotent (re-smoothing a smoothed tree is a no-op to ~1e-5
    // lnL), and checkpoint resume / engine-equivalence both rely on the
    // smoother sharing that property.  A loose stop here leaves residual
    // gradient that a resumed search would harvest, diverging trajectories.
    if (gain < 1e-7) break;
  }
  return current;
}

double spr_round(core::Evaluator& engine, tree::Tree& tree, int radius,
                 double current_lnl, SearchResult& result) {
  const obs::ScopedSpan round_span("search:spr_round");
  const int ntaxa = tree.taxon_count();

  // Consider pruning the subtree behind every inner slot.
  for (int inner = 0; inner < tree.inner_count(); ++inner) {
    for (int k = 0; k < 3; ++k) {
      tree::Slot* p = tree.inner_slot(inner, k);

      const auto record = tree::prune(tree, p);
      invalidate_around(engine, tree, {record.left->node_id, record.right->node_id, p->node_id});

      tree::Slot* best_edge = nullptr;
      double best_lnl = current_lnl;
      const auto candidates = tree::insertion_candidates(record, radius);
      for (tree::Slot* e : candidates) {
        tree::Slot* other = e->back;
        tree::regraft(tree, record, e);
        invalidate_around(engine, tree, {e->node_id, other->node_id, p->node_id});

        const double lnl = engine.log_likelihood(p->next);
        ++result.evaluated_insertions;
        if (lnl > best_lnl) {
          best_lnl = lnl;
          best_edge = e;
        }

        tree::ungraft(tree, record);
        invalidate_around(engine, tree, {e->node_id, other->node_id, p->node_id});
      }

      if (best_edge != nullptr && best_lnl > current_lnl + 1e-9) {
        tree::Slot* other_end = best_edge->back;  // joined partner before regraft
        tree::regraft(tree, record, best_edge);
        invalidate_around(engine, tree,
                          {best_edge->node_id, other_end->node_id, p->node_id});
        // Locally refine the three branches created by the insertion.
        optimize_around(engine, tree, {p->next, p->next->next, p});
        current_lnl = engine.log_likelihood(p->next);
        ++result.accepted_moves;
      } else {
        tree::undo_prune(tree, record);
        invalidate_around(engine, tree, {record.left->node_id, record.right->node_id, p->node_id});
      }
    }
  }

  (void)ntaxa;
  return current_lnl;
}

SearchResult run_tree_search(core::Evaluator& engine, tree::Tree& tree,
                             const SearchOptions& options) {
  SearchResult result;
  tree::Slot* root = tree.tip(0);

  double current;
  {
    const obs::ScopedSpan span("search:smooth");
    current = smooth_branches(engine, tree, root, options.smoothing_passes);
  }
  MINIPHI_LOG(Debug) << "search: after initial smoothing lnL = " << current;

  if (options.optimize_model) {
    const obs::ScopedSpan span("search:model");
    current = options.model_hook ? options.model_hook(engine, root)
                                 : optimize_alpha(engine, root, options.model_options.tolerance)
                                       .log_likelihood;
    MINIPHI_LOG(Debug) << "search: after model optimization lnL = " << current
                       << " (alpha = " << engine.alpha() << ")";
  }

  for (int round = 0; round < options.max_rounds; ++round) {
    const double before = current;
    current = spr_round(engine, tree, options.spr_radius, current, result);
    {
      const obs::ScopedSpan span("search:smooth");
      current = smooth_branches(engine, tree, root, options.smoothing_passes);
    }
    ++result.rounds;
    result.trajectory.push_back(current);
    MINIPHI_LOG(Debug) << "search: round " << round << " lnL = " << current;
    if (obs::kMetricsCompiled) {
      // Plan-cache effectiveness per round: builds should level off once the
      // SPR candidate set stabilizes, while hits/reuses keep growing.
      obs::Registry& registry = obs::Registry::instance();
      MINIPHI_LOG(Debug) << "search: plan cache builds=" << registry.value(registry.counter("plan.builds"))
                         << " hits=" << registry.value(registry.counter("plan.cache_hits"))
                         << " reuses=" << registry.value(registry.counter("plan.reuses"));
    }
    if (options.round_callback) options.round_callback(result.rounds, current);
    MINIPHI_ASSERT(current >= before - 1e-6);
    if (current - before < options.epsilon) break;
  }

  result.log_likelihood = current;
  return result;
}

}  // namespace miniphi::search
