#include "src/search/spr_search.hpp"

#include <algorithm>
#include <iterator>

#include "src/obs/metrics.hpp"
#include "src/obs/span_trace.hpp"
#include "src/util/error.hpp"
#include "src/util/logging.hpp"

namespace miniphi::search {
namespace {

/// Invalidates the CLAs of every node incident to a topology change.
/// The incident-node lists routinely repeat ids (e.g. a pruned slot adjacent
/// to its own reinsertion edge), so deduplicate before invalidating —
/// engines may do non-idempotent bookkeeping per invalidation (the
/// site-repeats path drops and rebuilds class maps).
void invalidate_around(core::Evaluator& engine, const tree::Tree& tree,
                       std::initializer_list<int> node_ids) {
  int seen[8];
  int count = 0;
  MINIPHI_ASSERT(node_ids.size() <= std::size(seen));
  for (const int node_id : node_ids) {
    MINIPHI_ASSERT(node_id >= 0 && node_id < tree.node_count());
    if (std::find(seen, seen + count, node_id) != seen + count) continue;
    seen[count++] = node_id;
    engine.invalidate_node(node_id);
  }
}

}  // namespace

double spr_round(core::Evaluator& engine, tree::Tree& tree, int radius,
                 double current_lnl, SearchResult& result) {
  const obs::ScopedSpan round_span("search:spr_round");
  const int ntaxa = tree.taxon_count();

  // Consider pruning the subtree behind every inner slot.
  for (int inner = 0; inner < tree.inner_count(); ++inner) {
    for (int k = 0; k < 3; ++k) {
      tree::Slot* p = tree.inner_slot(inner, k);

      const auto record = tree::prune(tree, p);
      invalidate_around(engine, tree, {record.left->node_id, record.right->node_id, p->node_id});

      tree::Slot* best_edge = nullptr;
      double best_lnl = current_lnl;
      const auto candidates = tree::insertion_candidates(record, radius);
      for (tree::Slot* e : candidates) {
        tree::Slot* other = e->back;
        tree::regraft(tree, record, e);
        invalidate_around(engine, tree, {e->node_id, other->node_id, p->node_id});

        const double lnl = engine.log_likelihood(p->next);
        ++result.evaluated_insertions;
        if (lnl > best_lnl) {
          best_lnl = lnl;
          best_edge = e;
        }

        tree::ungraft(tree, record);
        invalidate_around(engine, tree, {e->node_id, other->node_id, p->node_id});
      }

      if (best_edge != nullptr && best_lnl > current_lnl + 1e-9) {
        tree::Slot* other_end = best_edge->back;  // joined partner before regraft
        tree::regraft(tree, record, best_edge);
        invalidate_around(engine, tree,
                          {best_edge->node_id, other_end->node_id, p->node_id});
        // Locally refine the three branches created by the insertion.
        engine.optimize_branch(p->next);
        engine.optimize_branch(p->next->next);
        engine.optimize_branch(p);
        current_lnl = engine.log_likelihood(p->next);
        ++result.accepted_moves;
      } else {
        tree::undo_prune(tree, record);
        invalidate_around(engine, tree, {record.left->node_id, record.right->node_id, p->node_id});
      }
    }
  }

  (void)ntaxa;
  return current_lnl;
}

SearchResult run_tree_search(core::Evaluator& engine, tree::Tree& tree,
                             const SearchOptions& options) {
  SearchResult result;
  tree::Slot* root = tree.tip(0);

  double current;
  {
    const obs::ScopedSpan span("search:smooth");
    current = engine.optimize_all_branches(root, options.smoothing_passes);
  }
  MINIPHI_LOG(Debug) << "search: after initial smoothing lnL = " << current;

  if (options.optimize_model) {
    const obs::ScopedSpan span("search:model");
    current = options.model_hook ? options.model_hook(engine, root)
                                 : optimize_alpha(engine, root, options.model_options.tolerance)
                                       .log_likelihood;
    MINIPHI_LOG(Debug) << "search: after model optimization lnL = " << current
                       << " (alpha = " << engine.alpha() << ")";
  }

  for (int round = 0; round < options.max_rounds; ++round) {
    const double before = current;
    current = spr_round(engine, tree, options.spr_radius, current, result);
    {
      const obs::ScopedSpan span("search:smooth");
      current = engine.optimize_all_branches(root, options.smoothing_passes);
    }
    ++result.rounds;
    result.trajectory.push_back(current);
    MINIPHI_LOG(Debug) << "search: round " << round << " lnL = " << current;
    if (obs::kMetricsCompiled) {
      // Plan-cache effectiveness per round: builds should level off once the
      // SPR candidate set stabilizes, while hits/reuses keep growing.
      obs::Registry& registry = obs::Registry::instance();
      MINIPHI_LOG(Debug) << "search: plan cache builds=" << registry.value(registry.counter("plan.builds"))
                         << " hits=" << registry.value(registry.counter("plan.cache_hits"))
                         << " reuses=" << registry.value(registry.counter("plan.reuses"));
    }
    if (options.round_callback) options.round_callback(result.rounds, current);
    MINIPHI_ASSERT(current >= before - 1e-6);
    if (current - before < options.epsilon) break;
  }

  result.log_likelihood = current;
  return result;
}

}  // namespace miniphi::search
