// Maximum-likelihood tree search: lazy SPR hill climbing in the style of
// RAxML-Light / ExaML (the two programs the paper integrates its kernels
// into).  The search alternates branch-length smoothing, model parameter
// optimization, and rounds of subtree-prune-regraft moves within a
// rearrangement radius; candidate insertions are scored lazily (evaluate
// only, no per-candidate branch optimization) and the best improving
// insertion per pruned subtree is applied immediately.
#pragma once

#include <functional>
#include <vector>

#include "src/core/evaluator.hpp"
#include "src/search/model_optimizer.hpp"
#include "src/tree/moves.hpp"

namespace miniphi::search {

struct SearchOptions {
  int spr_radius = 5;          ///< rearrangement radius (RAxML -r style bound)
  double epsilon = 0.01;       ///< stop when a round gains less than this
  int max_rounds = 25;
  int smoothing_passes = 3;    ///< branch-optimization sweeps per smoothing
  bool optimize_model = true;  ///< run model optimization before the search
  ModelOptimizerOptions model_options;
  /// Optional model-optimization hook.  When set, it is invoked instead of
  /// the generic α-only optimization and must return the new log-likelihood
  /// at the given root edge.  Drivers use this to plug in the full GTR
  /// optimizer for their concrete engine type (see model_optimizer.hpp).
  std::function<double(core::Evaluator&, tree::Slot*)> model_hook;
  /// Invoked after every completed SPR round with (1-based round number,
  /// current log-likelihood).  Used for progress reporting and
  /// checkpointing (see search/checkpoint.hpp); the tree object passed to
  /// run_tree_search holds the current state when the callback fires.
  std::function<void(int, double)> round_callback;
};

struct SearchResult {
  double log_likelihood = 0.0;
  int rounds = 0;
  int accepted_moves = 0;
  std::int64_t evaluated_insertions = 0;
  std::vector<double> trajectory;  ///< log-likelihood after each round
};

/// Runs the full search on the engine's tree (modified in place: topology,
/// branch lengths, and — if enabled — model parameters).
SearchResult run_tree_search(core::Evaluator& engine, tree::Tree& tree,
                             const SearchOptions& options = {});

/// One SPR round at the given radius.  Returns the log-likelihood after the
/// round; `result` accumulates move statistics.
double spr_round(core::Evaluator& engine, tree::Tree& tree, int radius,
                 double current_lnl, SearchResult& result);

/// Branch-length smoothing driver.  Prefers the O(N) all-branch gradient
/// (core::Evaluator::gradient_all_branches): one sweep computes every
/// branch's (ℓ', ℓ'') in a single two-pass traversal and applies one clamped
/// Newton update per branch simultaneously.  Runs up to 16×`passes` sweeps,
/// stopping early once a sweep gains < 1e-7 lnL (tight, so smoothing an
/// already-smoothed tree is a no-op and resumed searches stay on the
/// uninterrupted trajectory).  Falls back to the classic
/// per-branch Newton sweep (optimize_all_branches) when the evaluator
/// declines the gradient or a simultaneous step fails to improve the
/// likelihood (the updates are independent, so a collective overshoot is
/// possible; the per-branch path is the safe slow road).  Returns the final
/// log-likelihood of the tree it leaves behind.
double smooth_branches(core::Evaluator& engine, tree::Tree& tree, tree::Slot* root_edge,
                       int passes);

}  // namespace miniphi::search
