// Client-side retry for shed submissions (DESIGN.md §15).
//
// An overloaded submit returns kOverloadedJobId — a *retryable* condition:
// the queue is full or the tenant is at quota, and both clear as jobs
// complete.  This helper resubmits with capped exponential backoff and
// seeded jitter, so a thundering herd of shed clients decorrelates instead
// of hammering the admission lock in lockstep.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "src/service/service.hpp"
#include "src/util/rng.hpp"

namespace miniphi::service {

struct RetryPolicy {
  int max_attempts = 8;
  std::chrono::microseconds initial_delay{200};
  std::chrono::microseconds max_delay{20'000};
  /// Jitter seed; give each client thread its own so their backoff
  /// schedules decorrelate deterministically.
  std::uint64_t seed = 0;
};

/// Calls `submit` (any callable returning a job id) until it admits, up to
/// max_attempts.  Returns the admitted job id, or kOverloadedJobId when
/// every attempt was shed — the caller decides whether that is an error.
template <typename SubmitFn>
std::int64_t submit_with_retry(SubmitFn&& submit, const RetryPolicy& policy = {}) {
  Rng rng(policy.seed);
  std::chrono::microseconds delay = policy.initial_delay;
  for (int attempt = 0;; ++attempt) {
    const std::int64_t id = submit();
    if (id != kOverloadedJobId || attempt + 1 >= policy.max_attempts) return id;
    // Full jitter on [delay/2, delay): decorrelates without ever collapsing
    // the backoff to zero.
    const double jitter = 0.5 + 0.5 * rng.uniform();
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(static_cast<double>(delay.count()) * jitter)));
    delay = std::min(policy.max_delay, delay * 2);
  }
}

/// Convenience overload binding a service + request.
inline std::int64_t submit_with_retry(EvaluationService& service, const JobRequest& request,
                                      const RetryPolicy& policy = {}) {
  return submit_with_retry([&] { return service.submit(request); }, policy);
}

}  // namespace miniphi::service
