#include "src/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/core/engine.hpp"
#include "src/core/engine_config.hpp"
#include "src/core/make_evaluator.hpp"
#include "src/core/partition_spec.hpp"
#include "src/core/partitioned.hpp"
#include "src/core/sdc.hpp"
#include "src/parallel/evaluator_factory.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace miniphi::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-job chaos stream: decorrelated from the soak seed by the job id, so
/// every run of the same seed draws the same fault plan per job.
std::uint64_t chaos_stream(std::uint64_t seed, std::int64_t job_id) {
  return seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(job_id + 1));
}

}  // namespace

struct EvaluationService::Tenant {
  std::string name;
  TenantQuota quota;
  TenantStats stats;
  std::deque<std::shared_ptr<Job>> queue;
  // svc.tenant.<name>.* counter ids (valid when the service publishes).
  obs::MetricId submitted_id{};
  obs::MetricId completed_id{};
  obs::MetricId cancelled_id{};
  obs::MetricId deadline_id{};
  obs::MetricId overloaded_id{};
  obs::MetricId corrupt_id{};
  obs::MetricId failed_id{};
  obs::MetricId degraded_id{};
};

struct EvaluationService::Job {
  Job(std::int64_t job_id, Tenant* owner, const JobRequest& req)
      : id(job_id), tenant(owner), request(req), tree(*req.tree) {}

  std::int64_t id;
  Tenant* tenant;
  JobRequest request;
  tree::Tree tree;  ///< master copy taken at submit; attempts copy again
  CancelToken token;
  Clock::time_point submitted_at = Clock::now();

  // Chaos plan (armed at dispatch, deterministic per job id).
  bool chaos_corrupt = false;
  std::uint64_t chaos_rng_seed = 0;

  // Guarded by the service mutex.
  JobStatus status = JobStatus::kPending;
  bool done = false;
  JobResult result;
};

EvaluationService::EvaluationService(const ServiceConfig& config) : config_(config) {
  MINIPHI_CHECK(config_.executors >= 1, "service: needs at least one executor");
  MINIPHI_CHECK(config_.pool_threads >= 1, "service: needs at least one pool thread");
  MINIPHI_CHECK(config_.queue_limit >= 1, "service: queue limit must be positive");
  if (obs::kMetricsCompiled && config_.metrics == obs::MetricsMode::kOn) {
    metrics_ = true;
    obs::Registry& registry = obs::Registry::instance();
    queue_depth_id_ = registry.gauge("svc.queue.depth");
    running_id_ = registry.gauge("svc.jobs.running");
    budget_id_ = registry.gauge("svc.budget.in_use_bytes");
    latency_id_ = registry.histogram("svc.job.latency_us");
  }
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int e = 0; e < config_.executors; ++e) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

EvaluationService::~EvaluationService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  budget_cv_.notify_all();
  for (auto& thread : executors_) thread.join();
}

void EvaluationService::register_tenant(const std::string& name, const TenantQuota& quota) {
  MINIPHI_CHECK(!name.empty() && name.find('.') == std::string::npos,
                "service: tenant names must be non-empty and must not contain '.' "
                "(they become svc.tenant.<name>.* metric components)");
  MINIPHI_CHECK(quota.max_in_flight >= 1, "service: tenant quota must admit at least one job");
  const std::lock_guard<std::mutex> lock(mutex_);
  MINIPHI_CHECK(tenants_.find(name) == tenants_.end(),
                "service: tenant '" + name + "' is already registered");
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->quota = quota;
  if (metrics_) {
    obs::Registry& registry = obs::Registry::instance();
    const std::string prefix = "svc.tenant." + name + ".";
    tenant->submitted_id = registry.counter(prefix + "submitted");
    tenant->completed_id = registry.counter(prefix + "completed");
    tenant->cancelled_id = registry.counter(prefix + "cancelled");
    tenant->deadline_id = registry.counter(prefix + "deadline_expired");
    tenant->overloaded_id = registry.counter(prefix + "overloaded");
    tenant->corrupt_id = registry.counter(prefix + "corrupt");
    tenant->failed_id = registry.counter(prefix + "failed");
    tenant->degraded_id = registry.counter(prefix + "degraded");
  }
  tenant_order_.push_back(tenant.get());
  tenants_.emplace(name, std::move(tenant));
}

std::int64_t EvaluationService::submit(const JobRequest& request) {
  const JobOptions& options = request.options;
  MINIPHI_CHECK(request.tree != nullptr, "service: job needs a tree");
  MINIPHI_CHECK(options.partitions >= 1, "service: partitions must be >= 1");
  if (options.partitions > 1) {
    MINIPHI_CHECK(request.alignment != nullptr,
                  "service: partitioned jobs need JobRequest::alignment");
  } else {
    MINIPHI_CHECK(request.patterns != nullptr,
                  "service: single-partition jobs need JobRequest::patterns");
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  MINIPHI_CHECK(!stop_, "service: submit after shutdown");
  const auto it = tenants_.find(request.tenant);
  MINIPHI_CHECK(it != tenants_.end(),
                "service: unknown tenant '" + request.tenant + "' (register it first)");
  Tenant& tenant = *it->second;

  // Load shedding: bounded global queue, per-tenant in-flight quota.  Both
  // return the retryable sentinel instead of blocking the client.
  if (queued_ >= config_.queue_limit ||
      tenant.stats.in_flight >= tenant.quota.max_in_flight) {
    ++tenant.stats.overloaded;
    if (metrics_) obs::Registry::instance().add(tenant.overloaded_id, 1);
    return kOverloadedJobId;
  }

  const std::int64_t id = next_job_id_++;
  auto job = std::make_shared<Job>(id, &tenant, request);
  if (options.deadline.count() > 0) {
    // Armed at submit: queue wait counts against the deadline, so a job
    // that starves in the queue expires without ever touching an engine.
    job->token.set_deadline_after(options.deadline);
  }
  jobs_.emplace(id, job);
  tenant.queue.push_back(std::move(job));
  ++queued_;
  ++tenant.stats.in_flight;
  ++tenant.stats.submitted;
  ++totals_.submitted;
  if (metrics_) obs::Registry::instance().add(tenant.submitted_id, 1);
  publish_gauges_locked();
  work_cv_.notify_one();
  return id;
}

bool EvaluationService::cancel(std::int64_t job_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second->done) return false;
  it->second->token.cancel();
  // A dispatcher parked on the budget wait polls its token; wake it now.
  budget_cv_.notify_all();
  return true;
}

JobResult EvaluationService::wait(std::int64_t job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  MINIPHI_CHECK(it != jobs_.end(),
                "service: wait on unknown job id " + std::to_string(job_id));
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] { return job->done; });
  return job->result;
}

void EvaluationService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
}

ServiceStats EvaluationService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats out = totals_;
  out.queued = queued_;
  out.running = running_;
  out.budget_in_use = budget_in_use_;
  return out;
}

TenantStats EvaluationService::tenant_stats(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  MINIPHI_CHECK(it != tenants_.end(), "service: unknown tenant '" + name + "'");
  return it->second->stats;
}

void EvaluationService::publish_gauges_locked() {
  if (!metrics_) return;
  obs::Registry& registry = obs::Registry::instance();
  registry.set(queue_depth_id_, queued_);
  registry.set(running_id_, running_);
  registry.set(budget_id_, budget_in_use_);
}

std::shared_ptr<EvaluationService::Job> EvaluationService::pop_next_locked() {
  // Round-robin fair admission: each dispatch starts scanning one tenant
  // past where the last one found work, so a tenant with a deep backlog
  // cannot starve the others out of the executor pool.
  const std::size_t count = tenant_order_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Tenant& tenant = *tenant_order_[(rr_cursor_ + i) % count];
    if (tenant.queue.empty()) continue;
    rr_cursor_ = (rr_cursor_ + i + 1) % count;
    std::shared_ptr<Job> job = std::move(tenant.queue.front());
    tenant.queue.pop_front();
    return job;
  }
  return nullptr;
}

void EvaluationService::executor_loop() {
  // Each executor owns its pool: a WorkerPool must be driven from the
  // thread that constructed it, and one pool per executor means jobs never
  // contend for fork-join regions.
  parallel::WorkerPool pool(config_.pool_threads);
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || queued_ > 0; });
      if (queued_ == 0) {
        if (stop_) return;  // graceful: the queue drained first
        continue;
      }
      job = pop_next_locked();
      if (job == nullptr) continue;
      --queued_;
      ++running_;
      job->status = JobStatus::kRunning;
      publish_gauges_locked();
    }
    run_job(pool, job);
  }
}

void EvaluationService::arm_chaos(Job& job) {
  const ChaosConfig& chaos = config_.chaos;
  if (!chaos.enabled) return;
  Rng rng(chaos_stream(chaos.seed, job.id));
  job.chaos_rng_seed = chaos_stream(chaos.seed ^ 0xC0FFEE, job.id);
  if (rng.uniform() < chaos.kill_rate) {
    // Mid-kernel kill: trip on a small check ordinal so the cancellation
    // lands inside the traversal, not before it.
    job.token.arm_trip_after(1 + static_cast<std::int64_t>(rng.below(16)),
                             /*as_deadline=*/false);
  } else if (rng.uniform() < chaos.expire_rate) {
    // Mid-traversal deadline expiry: same trip mechanism, deadline flavor.
    job.token.arm_trip_after(1 + static_cast<std::int64_t>(rng.below(16)),
                             /*as_deadline=*/true);
  }
  // Corruption only drills jobs that can detect it: the §10 heal ladder
  // needs sdc_checks, and the injection hook needs a concrete engine.
  if (job.request.options.sdc_checks && job.request.options.kind == JobKind::kEvaluate &&
      rng.uniform() < chaos.corrupt_rate) {
    job.chaos_corrupt = true;
  }
}

std::int64_t EvaluationService::reserve_budget(Job& job, bool& degraded) {
  degraded = false;
  const std::int64_t want = job.request.options.cla_budget_bytes;
  if (config_.cla_budget_bytes <= 0 || want <= 0) return want;  // ungoverned
  const std::int64_t floor =
      config_.degrade_floor_bytes > 0
          ? std::min<std::int64_t>(want, config_.degrade_floor_bytes)
          : std::max<std::int64_t>(1, want / 4);
  MINIPHI_CHECK(floor <= config_.cla_budget_bytes,
                "service: job degrade floor (" + std::to_string(floor) +
                    " bytes) exceeds the global CLA budget (" +
                    std::to_string(config_.cla_budget_bytes) + " bytes)");
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::int64_t available = config_.cla_budget_bytes - budget_in_use_;
    std::int64_t grant = 0;
    if (available >= want) {
      grant = want;
    } else if (available >= floor) {
      // Memory pressure: run with what is left instead of rejecting.  The
      // tiered store keeps lnL bit-identical across budgets (DESIGN.md
      // §14), so degradation costs wall time, never correctness.
      grant = available;
      degraded = true;
    }
    if (grant > 0) {
      budget_in_use_ += grant;
      publish_gauges_locked();
      return grant;
    }
    // Even the floor cannot fit: running jobs hold the bytes.  Park until
    // a release (or our own cancellation/deadline) — floor <= total, so an
    // idle budget always grants.
    job.token.check();
    budget_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

void EvaluationService::release_budget(std::int64_t grant) {
  if (grant <= 0 || config_.cla_budget_bytes <= 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    budget_in_use_ -= grant;
    MINIPHI_ASSERT(budget_in_use_ >= 0);
    publish_gauges_locked();
  }
  budget_cv_.notify_all();
}

void EvaluationService::run_job(parallel::WorkerPool& pool, const std::shared_ptr<Job>& job) {
  arm_chaos(*job);
  JobResult result;

  // Died in the queue (explicit cancel or deadline starve): report without
  // ever touching an engine or the budget.
  if (job->token.cancelled()) {
    result.status =
        job->token.deadline_expired() ? JobStatus::kDeadlineExceeded : JobStatus::kCancelled;
    result.error = job->token.deadline_expired() ? "cancel: deadline exceeded in queue"
                                                 : "cancel: cancelled in queue";
    finish_job(job, result);
    return;
  }

  std::int64_t grant = 0;
  bool degraded = false;
  try {
    grant = reserve_budget(*job, degraded);
  } catch (const CancelledError& cancelled) {
    result.status = cancelled.deadline_expired() ? JobStatus::kDeadlineExceeded
                                                 : JobStatus::kCancelled;
    result.error = cancelled.what();
    finish_job(job, result);
    return;
  } catch (const std::exception& error) {
    result.status = JobStatus::kFailed;
    result.error = error.what();
    finish_job(job, result);
    return;
  }
  result.cla_bytes_granted = grant;
  result.degraded = degraded;

  for (int attempt = 0;; ++attempt) {
    try {
      run_job_attempt(pool, *job, grant, result);
      result.status = JobStatus::kOk;
      break;
    } catch (const CancelledError& cancelled) {
      result.status = cancelled.deadline_expired() ? JobStatus::kDeadlineExceeded
                                                   : JobStatus::kCancelled;
      result.error = cancelled.what();
      break;
    } catch (const core::sdc::CorruptionDetected& fault) {
      // An escalation escaped the engine's own heal ladder.  Containment:
      // throw the poisoned evaluator away (CLA stores, spill files and
      // pins die with it) and rebuild from the pristine inputs — the
      // fault stays inside this job either way.
      result.rebuilds = attempt + 1;
      if (attempt < config_.corruption_retry_budget) continue;
      result.status = JobStatus::kCorrupt;
      result.error = fault.what();
      break;
    } catch (const std::exception& error) {
      result.status = JobStatus::kFailed;
      result.error = error.what();
      break;
    }
  }
  release_budget(grant);
  finish_job(job, result);
}

void EvaluationService::run_job_attempt(parallel::WorkerPool& pool, Job& job,
                                        std::int64_t grant, JobResult& result) {
  const JobRequest& request = job.request;
  const JobOptions& options = request.options;

  // Fresh working state per attempt: a corruption retry must not inherit
  // anything from the poisoned evaluator, including branch lengths a
  // partial smooth already moved.
  tree::Tree tree(job.tree);
  const model::GtrModel model(request.params);

  core::EngineConfig config;
  config.cancel = &job.token;
  config.sdc_checks = options.sdc_checks;
  config.cla_budget_bytes = grant > 0 ? grant : 0;
  config.cla_spill = options.cla_spill && grant > 0;
  config.cla_spill_dir = options.cla_spill_dir;

  std::unique_ptr<core::Evaluator> evaluator;
  std::vector<core::PartitionSpec> specs;
  if (options.partitions > 1) {
    specs = core::even_partitions(static_cast<std::int64_t>(request.alignment->site_count()),
                                  options.partitions);
    core::StreamPlan streams;
    streams.stream_count = std::clamp(config_.pool_threads, 1, options.partitions);
    evaluator = parallel::make_stream_evaluator(pool, *request.alignment, specs, model, tree,
                                                config, streams);
  } else if (config_.pool_threads > 1) {
    evaluator = parallel::make_fork_join_evaluator(pool, *request.patterns, model, tree, config);
  } else {
    evaluator = core::make_evaluator(*request.patterns, model, tree, config);
  }
  if (request.fault_injector) request.fault_injector(*evaluator);

  tree::Slot* root = tree.edges().front();
  switch (options.kind) {
    case JobKind::kEvaluate: {
      double lnl = evaluator->log_likelihood(root);
      if (job.chaos_corrupt) {
        lnl = chaos_corrupt_and_reevaluate(*evaluator, job, root);
      }
      result.log_likelihood = lnl;
      break;
    }
    case JobKind::kGradient: {
      result.log_likelihood = evaluator->log_likelihood(root);
      std::vector<core::BranchGradient> gradients;
      MINIPHI_CHECK(evaluator->gradient_all_branches(root, gradients),
                    "service: evaluator does not support all-branch gradients");
      result.gradient_edges = gradients.size();
      break;
    }
    case JobKind::kBranchSmooth:
      result.log_likelihood = evaluator->optimize_all_branches(root, options.smoothing_passes);
      break;
  }
}

double EvaluationService::chaos_corrupt_and_reevaluate(core::Evaluator& evaluator, Job& job,
                                                       tree::Slot* root) {
  // Flip one bit in a committed CLA, then re-evaluate: the verify-before-
  // reuse protocol (DESIGN.md §10) must detect it and heal by recompute,
  // so the returned lnL is the same bits the uncorrupted job produced —
  // exactly what the soak asserts against the solo baseline.
  core::LikelihoodEngine* engine = dynamic_cast<core::LikelihoodEngine*>(&evaluator);
  if (engine == nullptr) {
    if (auto* partitioned = dynamic_cast<core::PartitionedEvaluator*>(&evaluator)) {
      engine = &partitioned->partition_engine(0);
    }
  }
  if (engine != nullptr) {
    Rng rng(job.chaos_rng_seed);
    const int taxa = job.tree.taxon_count();
    const int inner = job.tree.inner_count();
    for (int tries = 0; tries < 8; ++tries) {
      const int node = taxa + static_cast<int>(rng.below(static_cast<std::uint64_t>(inner)));
      const auto word = static_cast<std::int64_t>(rng.below(1u << 20));
      const int bit = static_cast<int>(rng.below(52));
      if (engine->corrupt_cla_for_testing(node, word, bit)) break;
    }
  }
  return evaluator.log_likelihood(root);
}

void EvaluationService::finish_job(const std::shared_ptr<Job>& job, JobResult result) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Tenant& tenant = *job->tenant;
    job->status = result.status;
    job->result = std::move(result);
    job->done = true;
    --running_;
    --tenant.stats.in_flight;
    ++totals_.terminal;
    obs::Registry* registry = metrics_ ? &obs::Registry::instance() : nullptr;
    switch (job->status) {
      case JobStatus::kOk:
        ++tenant.stats.completed;
        if (registry != nullptr) registry->add(tenant.completed_id, 1);
        break;
      case JobStatus::kCancelled:
        ++tenant.stats.cancelled;
        if (registry != nullptr) registry->add(tenant.cancelled_id, 1);
        break;
      case JobStatus::kDeadlineExceeded:
        ++tenant.stats.deadline_expired;
        if (registry != nullptr) registry->add(tenant.deadline_id, 1);
        break;
      case JobStatus::kCorrupt:
        ++tenant.stats.corrupt;
        if (registry != nullptr) registry->add(tenant.corrupt_id, 1);
        break;
      case JobStatus::kFailed:
      case JobStatus::kPending:
      case JobStatus::kRunning:
        ++tenant.stats.failed;
        if (registry != nullptr) registry->add(tenant.failed_id, 1);
        break;
    }
    if (job->result.degraded) {
      ++tenant.stats.degraded;
      if (registry != nullptr) registry->add(tenant.degraded_id, 1);
    }
    if (registry != nullptr) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - job->submitted_at);
      registry->observe(latency_id_, elapsed.count());
    }
    publish_gauges_locked();
  }
  done_cv_.notify_all();
}

}  // namespace miniphi::service
