// In-process multi-tenant evaluation service (DESIGN.md §15).
//
// The service accepts concurrent jobs — evaluate, all-branch gradient,
// branch smoothing — from many client threads, admits them against
// per-tenant quotas and a global CLA byte budget, and dispatches them onto
// executor threads that each own a parallel::WorkerPool and build a fresh
// evaluator per job through the factory seam.  The robustness contract:
//
//  * Deadlines + cooperative cancellation: every job carries a CancelToken
//    (deadline armed at submit, so queue wait counts); engines check it at
//    plan-level boundaries and a cancelled job unwinds with its pins,
//    budget grant and spill files released, returning a structured status
//    instead of poisoning shared state.
//  * Admission control + load shedding: a bounded global queue with
//    round-robin per-tenant FIFOs; an overloaded submit returns
//    kOverloadedJobId (retryable — see retry.hpp) instead of blocking.
//  * Graceful degradation: when the global CLA budget cannot cover a job's
//    request, the job is granted what remains (down to a floor) and runs
//    with a tighter tiered-store budget — bit-identical lnL, slower —
//    instead of being rejected.
//  * Containment: sdc::CorruptionDetected escalations escaping an engine's
//    heal ladder are contained to the owning job — the evaluator is
//    rebuilt from scratch and the job retried up to a budget, then failed
//    with a structured error.  No job failure mode aborts the process.
//
// Chaos mode (ChaosConfig) drives the fault drill: seeded, per-job
// deterministic mid-kernel kills (CancelToken::arm_trip_after), mid-
// traversal deadline expiries, and CLA bit flips through the §10 heal path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/bio/alignment.hpp"
#include "src/bio/patterns.hpp"
#include "src/core/evaluator.hpp"
#include "src/model/gtr.hpp"
#include "src/obs/metrics.hpp"
#include "src/parallel/worker_pool.hpp"
#include "src/tree/tree.hpp"
#include "src/util/cancellation.hpp"

namespace miniphi::service {

enum class JobKind {
  kEvaluate,      ///< log-likelihood at the canonical root edge
  kGradient,      ///< log-likelihood + all-branch gradient (PR 7 descent)
  kBranchSmooth,  ///< optimize_all_branches passes, returns the final lnL
};

enum class JobStatus {
  kPending,           ///< queued, not yet dispatched
  kRunning,           ///< on an executor
  kOk,                ///< completed; result fields are valid
  kCancelled,         ///< cancel() observed at a cancellation boundary
  kDeadlineExceeded,  ///< deadline expired (in queue or mid-traversal)
  kCorrupt,           ///< corruption escalations exhausted the rebuild budget
  kFailed,            ///< any other structured failure (Error, bad_alloc, …)
};

/// submit() result when the job was shed (queue full or tenant over quota).
/// Retryable: the client-side helper in retry.hpp backs off and resubmits.
inline constexpr std::int64_t kOverloadedJobId = -1;

/// Seeded fault drill (mpi::FaultPlan idiom, DESIGN.md §9): each dispatched
/// job derives a deterministic per-job RNG from `seed` and its job id, so a
/// soak run is reproducible.  Rates are independent probabilities per job.
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  double kill_rate = 0.0;     ///< cancel mid-kernel via arm_trip_after
  double expire_rate = 0.0;   ///< expire the deadline mid-traversal
  double corrupt_rate = 0.0;  ///< flip a CLA bit between two evaluations
};

struct ServiceConfig {
  int executors = 2;     ///< executor threads (each owns a WorkerPool)
  int pool_threads = 1;  ///< workers per executor pool (1 = serial engines)
  /// Global bound on *queued* jobs across all tenants; submits beyond it
  /// are shed with kOverloadedJobId.
  int queue_limit = 32;
  /// Global CLA byte budget governing all running jobs (0 = ungoverned).
  /// Jobs requesting bytes reserve them at dispatch; when the remainder
  /// cannot cover a request the job degrades down to `degrade_floor_bytes`
  /// instead of failing, and below the floor it waits for a release.
  std::int64_t cla_budget_bytes = 0;
  /// Smallest degraded grant.  0 derives a quarter of the job's request.
  /// A floor below the engine's minimum working set fails the job with a
  /// structured error (the engine's "minimum working set" check), never
  /// the process.
  std::int64_t degrade_floor_bytes = 0;
  /// Evaluator rebuilds per job after a CorruptionDetected escalation
  /// escapes the engine heal ladder, before the job fails as kCorrupt.
  int corruption_retry_budget = 2;
  /// Publish `svc.*` metrics (per-tenant counters, queue/budget gauges,
  /// job-latency histogram) to the process obs::Registry.
  obs::MetricsMode metrics = obs::MetricsMode::kOff;
  ChaosConfig chaos;
};

struct TenantQuota {
  /// Max jobs a tenant may have queued + running; submits beyond it shed.
  int max_in_flight = 4;
};

struct JobOptions {
  JobKind kind = JobKind::kEvaluate;
  /// 0 = no deadline.  Armed at submit, so queue wait counts against it.
  std::chrono::nanoseconds deadline{0};
  /// CLA bytes this job requests from the global budget (0 = unbudgeted:
  /// full per-node allocation, no reservation).
  std::int64_t cla_budget_bytes = 0;
  /// >1 builds a partitioned evaluator over even site splits (requires
  /// JobRequest::alignment).
  int partitions = 1;
  int smoothing_passes = 1;  ///< kBranchSmooth only
  bool sdc_checks = false;
  bool cla_spill = false;  ///< budgeted jobs may spill instead of recompute
  std::string cla_spill_dir{};
};

struct JobRequest {
  std::string tenant;
  /// Single-partition input (partitions == 1).  Must outlive the job.
  const bio::PatternSet* patterns = nullptr;
  /// Partitioned input (partitions > 1).  Must outlive the job.
  const bio::Alignment* alignment = nullptr;
  /// Copied at submit: the service never mutates client trees.
  const tree::Tree* tree = nullptr;
  model::GtrParams params{};
  JobOptions options{};
  /// Test-only fault hook, called once per attempt right after the
  /// evaluator is built (may throw sdc::CorruptionDetected to drill the
  /// containment ladder, or corrupt state through the test peers).
  std::function<void(core::Evaluator&)> fault_injector{};
};

struct JobResult {
  JobStatus status = JobStatus::kPending;
  double log_likelihood = 0.0;
  std::size_t gradient_edges = 0;    ///< kGradient: branches in the sweep
  std::int64_t cla_bytes_granted = 0;  ///< reservation actually granted
  bool degraded = false;             ///< granted < requested
  int rebuilds = 0;                  ///< evaluator rebuilds after escalations
  std::string error;                 ///< structured message for non-kOk
};

/// Monotonic per-tenant counters plus the current in-flight level
/// (queued + running) — the quantity quota admission gates on and the soak
/// test reconciles to zero after drain.
struct TenantStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;  ///< terminal with kOk
  std::int64_t cancelled = 0;
  std::int64_t deadline_expired = 0;
  std::int64_t overloaded = 0;  ///< submits shed (not admitted)
  std::int64_t corrupt = 0;
  std::int64_t failed = 0;
  std::int64_t degraded = 0;  ///< jobs run with a reduced CLA grant
  std::int64_t in_flight = 0;
};

struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t terminal = 0;  ///< jobs in any terminal status
  std::int64_t queued = 0;
  std::int64_t running = 0;
  std::int64_t budget_in_use = 0;  ///< CLA bytes currently reserved
};

/// The in-process evaluation service.  Thread-safe: submit / cancel / wait
/// / stats may be called concurrently from any number of client threads.
class EvaluationService {
 public:
  explicit EvaluationService(const ServiceConfig& config);

  /// Drains gracefully: queued jobs still run (a deadline or cancel still
  /// short-circuits them), then the executors exit.
  ~EvaluationService();

  EvaluationService(const EvaluationService&) = delete;
  EvaluationService& operator=(const EvaluationService&) = delete;

  /// Registers a tenant.  Names must be non-empty and must not contain '.'
  /// (they become metric-name components).  Throws on duplicates.
  void register_tenant(const std::string& name, const TenantQuota& quota);

  /// Admits a job, arming its deadline, or sheds it: returns a job id
  /// (>= 0) or kOverloadedJobId when the global queue is full or the
  /// tenant is over quota.  Throws Error for malformed requests (unknown
  /// tenant, missing inputs) — caller bugs, not load conditions.
  std::int64_t submit(const JobRequest& request);

  /// Requests cooperative cancellation.  Returns false when the job is
  /// unknown or already terminal.  The job still completes through wait()
  /// with kCancelled (or with its own result if it won the race).
  bool cancel(std::int64_t job_id);

  /// Blocks until the job is terminal and returns its result.  Throws
  /// Error for unknown ids.
  JobResult wait(std::int64_t job_id);

  /// Blocks until no job is queued or running.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] TenantStats tenant_stats(const std::string& name) const;

 private:
  struct Tenant;
  struct Job;

  void executor_loop();
  std::shared_ptr<Job> pop_next_locked();
  void run_job(parallel::WorkerPool& pool, const std::shared_ptr<Job>& job);
  void run_job_attempt(parallel::WorkerPool& pool, Job& job, std::int64_t grant,
                       JobResult& result);
  double chaos_corrupt_and_reevaluate(core::Evaluator& evaluator, Job& job, tree::Slot* root);
  /// Reserves CLA bytes for `job` (possibly degraded), waiting for a
  /// release when even the floor is unavailable.  Returns the grant and
  /// sets `degraded`.  Throws Error when the budget can never fit.
  std::int64_t reserve_budget(Job& job, bool& degraded);
  void release_budget(std::int64_t grant);
  void finish_job(const std::shared_ptr<Job>& job, JobResult result);
  void publish_gauges_locked();
  void arm_chaos(Job& job);

  ServiceConfig config_;
  bool metrics_ = false;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;    ///< executors: work available / stop
  std::condition_variable budget_cv_;  ///< dispatchers waiting for budget
  std::condition_variable done_cv_;    ///< wait()/drain() wakeups
  bool stop_ = false;

  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<Tenant*> tenant_order_;  ///< round-robin admission order
  std::size_t rr_cursor_ = 0;
  std::unordered_map<std::int64_t, std::shared_ptr<Job>> jobs_;
  std::int64_t next_job_id_ = 0;
  std::int64_t queued_ = 0;
  std::int64_t running_ = 0;
  std::int64_t budget_in_use_ = 0;
  ServiceStats totals_;

  // svc.* metric ids (valid when metrics_).
  obs::MetricId queue_depth_id_{};
  obs::MetricId running_id_{};
  obs::MetricId budget_id_{};
  obs::MetricId latency_id_{};

  std::vector<std::thread> executors_;  ///< last member: joins before teardown
};

}  // namespace miniphi::service
