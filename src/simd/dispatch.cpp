#include "src/simd/dispatch.hpp"

#include "src/util/error.hpp"

namespace miniphi::simd {

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

Isa best_supported_isa() {
  if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

std::string to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

Isa isa_from_string(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2" || name == "avx") return Isa::kAvx2;
  if (name == "avx512" || name == "mic") return Isa::kAvx512;
  throw Error("unknown ISA name '" + name + "' (expected scalar|avx2|avx512)");
}

}  // namespace miniphi::simd
