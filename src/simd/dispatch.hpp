// Runtime ISA detection and kernel back-end selection.
//
// The paper ships AVX kernels for the host CPUs and 512-bit kernels for the
// Xeon Phi.  Here both live in one binary: each back-end is compiled in its
// own translation unit with the matching -m flags, and the dispatcher picks
// the widest back-end the running CPU supports (or an explicit override, so
// benches can compare back-ends on the same machine).
#pragma once

#include <string>

namespace miniphi::simd {

/// Kernel instruction-set back-ends, ordered by vector width.
enum class Isa {
  kScalar = 0,  ///< portable C++, 1 double per "vector"
  kAvx2 = 1,    ///< 256-bit, 4 doubles — the paper's CPU baseline ISA class
  kAvx512 = 2,  ///< 512-bit, 8 doubles — the MIC / KNC vector width
};

/// Widest ISA supported by the running CPU (and compiled into this binary).
Isa best_supported_isa();

/// True iff the given back-end can execute on this CPU.
bool isa_supported(Isa isa);

/// Number of doubles per vector register for the back-end.
constexpr int isa_width(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return 1;
    case Isa::kAvx2: return 4;
    case Isa::kAvx512: return 8;
  }
  return 1;
}

std::string to_string(Isa isa);

/// Parses "scalar" / "avx2" / "avx512"; throws miniphi::Error otherwise.
Isa isa_from_string(const std::string& name);

}  // namespace miniphi::simd
