// Shared ISA → kernel-table dispatch.
//
// The dense, CAT and general engines each carry an ops table (function
// pointers per kernel) with scalar/AVX2/AVX-512 constructors compiled in
// behind MINIPHI_KERNELS_* gates.  The selection logic — check the gate,
// check the CPU, fall back with a precise error — is identical across the
// three, so it lives here once.  Call sites pass nullptr for constructors
// their translation unit was built without (the gates are per-target
// compile definitions, so the #if belongs at the call site, not here).
#pragma once

#include "src/simd/dispatch.hpp"
#include "src/util/error.hpp"

namespace miniphi::simd {

/// Returns the kernel-ops table for `isa`.  `scalar` is mandatory; `avx2` /
/// `avx512` may be nullptr when the binary was built without that backend.
/// Throws Error when the backend is missing or the CPU lacks the ISA.
template <typename Ops>
Ops dispatch_kernel_ops(Isa isa, Ops (*scalar)(), Ops (*avx2)(), Ops (*avx512)()) {
  switch (isa) {
    case Isa::kScalar:
      return scalar();
    case Isa::kAvx2:
      if (avx2 == nullptr) throw Error("AVX2 kernels were not compiled into this binary");
      MINIPHI_CHECK(isa_supported(Isa::kAvx2),
                    "AVX2 kernels requested but this CPU lacks AVX2/FMA");
      return avx2();
    case Isa::kAvx512:
      if (avx512 == nullptr) throw Error("AVX-512 kernels were not compiled into this binary");
      MINIPHI_CHECK(isa_supported(Isa::kAvx512),
                    "AVX-512 kernels requested but this CPU lacks AVX-512F");
      return avx512();
  }
  throw Error("unknown ISA");
}

}  // namespace miniphi::simd
