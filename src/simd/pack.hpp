// Fixed-width vector packs of doubles: the building block of all PLF kernels.
//
// Pack<1> is portable; Pack<4> wraps AVX2+FMA (__m256d) and Pack<8> wraps
// AVX-512F (__m512d).  The wide specializations only exist in translation
// units compiled with the matching -m flags — kernel back-ends instantiate
// the shared kernel templates once per ISA (see src/core/kernels_impl.hpp),
// mirroring how the paper keeps one algorithm with per-ISA inner loops.
//
// Operations are the minimal set the kernels need: aligned load/store,
// streaming (non-temporal) store (paper Section V-B5), broadcast, +, *,
// fused multiply-add (Section V-B3: "the inner loop can be calculated by two
// fused-multiply-add vector operations"), and a horizontal sum for the
// site-blocked reductions in coreDerivative (Section V-B4).
#pragma once

#include <cstddef>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace miniphi::simd {

template <int W>
struct Pack;

/// Scalar "vector": keeps the kernel templates ISA-agnostic.
template <>
struct Pack<1> {
  static constexpr int kWidth = 1;
  double v;

  static Pack load(const double* p) { return {*p}; }
  static Pack broadcast(double x) { return {x}; }
  static Pack zero() { return {0.0}; }
  void store(double* p) const { *p = v; }
  void stream(double* p) const { *p = v; }

  friend Pack operator+(Pack a, Pack b) { return {a.v + b.v}; }
  friend Pack operator-(Pack a, Pack b) { return {a.v - b.v}; }
  friend Pack operator*(Pack a, Pack b) { return {a.v * b.v}; }
  friend Pack operator/(Pack a, Pack b) { return {a.v / b.v}; }

  /// a*b + c
  static Pack fma(Pack a, Pack b, Pack c) { return {a.v * b.v + c.v}; }

  static Pack abs(Pack a) { return {a.v < 0.0 ? -a.v : a.v}; }
  static Pack max(Pack a, Pack b) { return {a.v > b.v ? a.v : b.v}; }

  /// Broadcast element J of each aligned 4-lane group (degenerate for W=1).
  template <int J>
  static Pack quad_broadcast(Pack a) {
    static_assert(J >= 0 && J < 4);
    return a;
  }

  double horizontal_sum() const { return v; }
  double horizontal_max() const { return v; }
};

#if defined(__AVX2__)
/// 256-bit pack: the paper's CPU-baseline (AVX) vector width for doubles.
template <>
struct Pack<4> {
  static constexpr int kWidth = 4;
  __m256d v;

  static Pack load(const double* p) { return {_mm256_load_pd(p)}; }
  static Pack broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Pack zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_store_pd(p, v); }
  void stream(double* p) const { _mm256_stream_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm256_div_pd(a.v, b.v)}; }

  static Pack fma(Pack a, Pack b, Pack c) { return {_mm256_fmadd_pd(a.v, b.v, c.v)}; }

  static Pack abs(Pack a) {
    const __m256d sign_mask = _mm256_set1_pd(-0.0);
    return {_mm256_andnot_pd(sign_mask, a.v)};
  }
  static Pack max(Pack a, Pack b) { return {_mm256_max_pd(a.v, b.v)}; }

  /// Broadcast lane J to all 4 lanes (one 256-bit register = one Γ rate).
  template <int J>
  static Pack quad_broadcast(Pack a) {
    static_assert(J >= 0 && J < 4);
    return {_mm256_permute4x64_pd(a.v, J * 0x55)};
  }

  double horizontal_max() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_max_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_max_sd(pair, swapped));
  }

  double horizontal_sum() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 512-bit pack: the MIC (Knights Corner) vector width — 8 doubles per op.
template <>
struct Pack<8> {
  static constexpr int kWidth = 8;
  __m512d v;

  static Pack load(const double* p) { return {_mm512_load_pd(p)}; }
  static Pack broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Pack zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_store_pd(p, v); }
  void stream(double* p) const { _mm512_stream_pd(p, v); }

  friend Pack operator+(Pack a, Pack b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm512_div_pd(a.v, b.v)}; }

  static Pack fma(Pack a, Pack b, Pack c) { return {_mm512_fmadd_pd(a.v, b.v, c.v)}; }

  static Pack abs(Pack a) { return {_mm512_abs_pd(a.v)}; }
  static Pack max(Pack a, Pack b) { return {_mm512_max_pd(a.v, b.v)}; }

  /// Broadcast element J of each aligned 4-lane group: one 512-bit register
  /// holds two Γ rates, so lanes {J, J+4} fan out to their own halves.
  template <int J>
  static Pack quad_broadcast(Pack a) {
    static_assert(J >= 0 && J < 4);
    const __m512i idx = _mm512_set_epi64(J + 4, J + 4, J + 4, J + 4, J, J, J, J);
    return {_mm512_permutexvar_pd(idx, a.v)};
  }

  double horizontal_sum() const { return _mm512_reduce_add_pd(v); }
  double horizontal_max() const { return _mm512_reduce_max_pd(v); }

  /// Assembles one 512-bit register from two independently addressed
  /// 256-bit halves (each 32-byte aligned).  This is the CAT-model
  /// alignment trick of paper Section V-B2: two 4-double sites with
  /// different rate categories share one vector operation.
  static Pack concat(const double* lo, const double* hi) {
    const __m256d low = _mm256_load_pd(lo);
    const __m256d high = _mm256_load_pd(hi);
    return {_mm512_insertf64x4(_mm512_castpd256_pd512(low), high, 1)};
  }

#if defined(__AVX2__)
  [[nodiscard]] Pack<4> lower_half() const { return {_mm512_castpd512_pd256(v)}; }
  [[nodiscard]] Pack<4> upper_half() const { return {_mm512_extractf64x4_pd(v, 1)}; }
#endif
};
#endif  // __AVX512F__

/// Software prefetch into L1 (paper Section V-B6: manual prefetching with a
/// tuned distance gives notable speedups for these streaming kernels).
inline void prefetch_read(const void* p) {
#if defined(__AVX2__) || defined(__AVX512F__)
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#else
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__AVX2__) || defined(__AVX512F__)
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#else
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#endif
}

/// Fence required after streaming stores before other threads read the data.
inline void stream_fence() {
#if defined(__AVX2__) || defined(__AVX512F__)
  _mm_sfence();
#endif
}

}  // namespace miniphi::simd
