#include "src/simulate/simulate.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <string>

#include "src/util/error.hpp"

namespace miniphi::simulate {
namespace {

/// Samples an index from a 4-entry discrete distribution.
int sample4(const double* probabilities, Rng& rng) {
  const double u = rng.uniform();
  double cumulative = 0.0;
  for (int i = 0; i < 3; ++i) {
    cumulative += probabilities[i];
    if (u < cumulative) return i;
  }
  return 3;
}

}  // namespace

tree::Tree yule_tree(int taxon_count, Rng& rng, double target_depth) {
  MINIPHI_CHECK(taxon_count >= 3, "yule_tree: need at least 3 taxa");
  MINIPHI_CHECK(target_depth > 0.0, "yule_tree: depth must be positive");

  // Simulate the birth process forward in time: each active lineage keeps a
  // "birth time"; at each event a uniformly chosen lineage splits.
  struct Lineage {
    int parent_attach;   // index into pending attachment list
    double birth_time;
  };

  // Grow a rooted topology as parent pointers, then convert to our unrooted
  // Tree via Newick (simplest correct path, and exercises the parser).
  struct ProtoNode {
    int left = -1;
    int right = -1;
    double time = 0.0;  // node height from the root
    int tip_id = -1;
  };
  std::vector<ProtoNode> nodes;
  nodes.push_back({});  // root, time 0

  std::vector<int> active = {0};
  double now = 0.0;
  int next_tip = 0;
  while (static_cast<int>(active.size()) < taxon_count) {
    const double rate = static_cast<double>(active.size());
    now += rng.exponential(rate);
    const std::size_t pick = rng.below(active.size());
    const int node = active[pick];
    nodes[static_cast<std::size_t>(node)].time = now;
    const int left = static_cast<int>(nodes.size());
    nodes.push_back({});
    const int right = static_cast<int>(nodes.size());
    nodes.push_back({});
    nodes[static_cast<std::size_t>(node)].left = left;
    nodes[static_cast<std::size_t>(node)].right = right;
    active[pick] = left;
    active.push_back(right);
  }
  // Close all open lineages at the present; assign tip ids in active order.
  now += rng.exponential(static_cast<double>(active.size()));
  for (const int node : active) {
    nodes[static_cast<std::size_t>(node)].time = now;
    nodes[static_cast<std::size_t>(node)].tip_id = next_tip++;
  }

  // Scale heights so root-to-tip depth equals target_depth substitutions.
  const double scale = target_depth / now;

  // Serialize to Newick with branch = child.time - parent.time.
  std::string newick;
  const std::function<void(int, double)> serialize = [&](int node, double parent_time) {
    const auto& n = nodes[static_cast<std::size_t>(node)];
    if (n.tip_id >= 0) {
      newick += "t" + std::to_string(n.tip_id);
    } else {
      newick += "(";
      serialize(n.left, n.time);
      newick += ",";
      serialize(n.right, n.time);
      newick += ")";
    }
    if (parent_time >= 0.0) {
      // Guard against zero-length branches; the likelihood domain is z > 0.
      const double length = std::max((n.time - parent_time) * scale, 1e-6);
      newick += ":" + std::to_string(length);
    }
  };
  serialize(0, -1.0);
  newick += ";";

  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(taxon_count));
  for (int i = 0; i < taxon_count; ++i) names.push_back("t" + std::to_string(i));
  return tree::Tree::from_newick(*io::parse_newick(newick), names);
}

SimulationResult simulate_alignment(const tree::Tree& tree, const model::GtrModel& model,
                                    const SimulationOptions& options, Rng& rng) {
  MINIPHI_CHECK(options.sites > 0, "simulate_alignment: need at least one site");
  const int ntaxa = tree.taxon_count();
  const auto nsites = static_cast<std::size_t>(options.sites);
  const auto& pi = model.frequencies();
  const auto& gamma_rates = model.gamma_rates();
  const int ncat = model.gamma_categories();

  // Per-site rate category (equal prior over categories, Yang 1994).
  std::vector<std::uint8_t> categories(nsites);
  for (auto& category : categories) {
    category = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(ncat)));
  }

  // Root the process on an arbitrary branch: start from the virtual root at
  // tip 0's branch, drawing the state at the *inner* end from π (valid under
  // reversibility: the stationary process can be rooted anywhere).
  std::vector<std::vector<std::uint8_t>> states(
      static_cast<std::size_t>(tree.node_count()), std::vector<std::uint8_t>(nsites));

  const tree::Slot* start = tree.tip(0)->back;
  auto& root_states = states[static_cast<std::size_t>(start->node_id)];
  for (std::size_t s = 0; s < nsites; ++s) {
    root_states[s] = static_cast<std::uint8_t>(sample4(pi.data(), rng));
  }

  // Pre-build transition matrices per (edge, category) lazily while walking.
  const std::function<void(const tree::Slot*, const tree::Slot*)> evolve =
      [&](const tree::Slot* from, const tree::Slot* to_slot) {
        // `to_slot` is the slot at the far end of the branch (from_side->back).
        const double z = to_slot->length;
        std::array<model::Matrix4, 8> p_by_cat;
        for (int c = 0; c < ncat; ++c) {
          p_by_cat[static_cast<std::size_t>(c)] =
              model.transition_matrix(z, gamma_rates[static_cast<std::size_t>(c)]);
        }
        const auto& src = states[static_cast<std::size_t>(from->node_id)];
        auto& dst = states[static_cast<std::size_t>(to_slot->node_id)];
        for (std::size_t s = 0; s < nsites; ++s) {
          const auto& p = p_by_cat[categories[s]];
          dst[s] = static_cast<std::uint8_t>(sample4(&p[static_cast<std::size_t>(src[s]) * 4], rng));
        }
        if (!to_slot->is_tip()) {
          evolve(to_slot, to_slot->child1());
          evolve(to_slot, to_slot->child2());
        }
      };

  // From the start node, evolve towards tip 0 and into both subtrees.
  evolve(start, tree.tip(0));
  if (!start->is_tip()) {
    evolve(start, start->child1());
    evolve(start, start->child2());
  }

  // Collect tip rows into an alignment.
  std::vector<std::string> names;
  std::vector<std::vector<bio::DnaCode>> rows;
  names.reserve(static_cast<std::size_t>(ntaxa));
  rows.reserve(static_cast<std::size_t>(ntaxa));
  for (int t = 0; t < ntaxa; ++t) {
    names.push_back("t" + std::to_string(t));
    std::vector<bio::DnaCode> row(nsites);
    const auto& tip_states = states[static_cast<std::size_t>(t)];
    for (std::size_t s = 0; s < nsites; ++s) {
      row[s] = static_cast<bio::DnaCode>(1u << tip_states[s]);
    }
    rows.push_back(std::move(row));
  }

  SimulationResult result{bio::Alignment(std::move(names), std::move(rows)), {}};
  if (options.record_categories) result.site_categories = std::move(categories);
  return result;
}

bio::Alignment paper_dataset(std::int64_t sites, std::uint64_t seed, int taxon_count) {
  Rng rng(seed);
  // Mildly informative GTR parameters (non-uniform but not extreme), as is
  // typical for INDELible benchmark configurations.
  model::GtrParams params;
  params.exchangeabilities = {1.2, 3.5, 0.8, 0.9, 3.1, 1.0};
  params.frequencies = {0.30, 0.21, 0.24, 0.25};
  params.alpha = 0.8;
  const model::GtrModel model(params);

  tree::Tree tree = yule_tree(taxon_count, rng, 0.6);
  SimulationOptions options;
  options.sites = sites;
  return simulate_alignment(tree, model, options, rng).alignment;
}

GeneralSimulationResult simulate_general(const tree::Tree& tree,
                                         const model::GeneralModel& model, std::int64_t sites,
                                         Rng& rng) {
  MINIPHI_CHECK(sites > 0, "simulate_general: need at least one site");
  const int ntaxa = tree.taxon_count();
  const int states = model.states();
  const auto nsites = static_cast<std::size_t>(sites);
  const auto& pi = model.frequencies();
  const auto& gamma_rates = model.gamma_rates();
  const int ncat = model.gamma_categories();

  const auto sample = [&](const double* probabilities) {
    const double u = rng.uniform();
    double cumulative = 0.0;
    for (int i = 0; i < states - 1; ++i) {
      cumulative += probabilities[i];
      if (u < cumulative) return static_cast<std::uint8_t>(i);
    }
    return static_cast<std::uint8_t>(states - 1);
  };

  std::vector<std::uint8_t> categories(nsites);
  for (auto& category : categories) {
    category = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(ncat)));
  }

  std::vector<std::vector<std::uint8_t>> states_by_node(
      static_cast<std::size_t>(tree.node_count()), std::vector<std::uint8_t>(nsites));
  const tree::Slot* start = tree.tip(0)->back;
  auto& root_states = states_by_node[static_cast<std::size_t>(start->node_id)];
  for (std::size_t s = 0; s < nsites; ++s) root_states[s] = sample(pi.data());

  const std::function<void(const tree::Slot*, const tree::Slot*)> evolve =
      [&](const tree::Slot* from, const tree::Slot* to_slot) {
        std::vector<model::Matrix> p_by_cat;
        p_by_cat.reserve(static_cast<std::size_t>(ncat));
        for (int c = 0; c < ncat; ++c) {
          p_by_cat.push_back(model.transition_matrix(
              to_slot->length, gamma_rates[static_cast<std::size_t>(c)]));
        }
        const auto& src = states_by_node[static_cast<std::size_t>(from->node_id)];
        auto& dst = states_by_node[static_cast<std::size_t>(to_slot->node_id)];
        for (std::size_t s = 0; s < nsites; ++s) {
          const auto& p = p_by_cat[categories[s]];
          dst[s] = sample(&p.data()[static_cast<std::size_t>(src[s]) *
                                    static_cast<std::size_t>(states)]);
        }
        if (!to_slot->is_tip()) {
          evolve(to_slot, to_slot->child1());
          evolve(to_slot, to_slot->child2());
        }
      };
  evolve(start, tree.tip(0));
  if (!start->is_tip()) {
    evolve(start, start->child1());
    evolve(start, start->child2());
  }

  GeneralSimulationResult result;
  result.names.reserve(static_cast<std::size_t>(ntaxa));
  result.rows.reserve(static_cast<std::size_t>(ntaxa));
  for (int t = 0; t < ntaxa; ++t) {
    result.names.push_back("t" + std::to_string(t));
    result.rows.push_back(std::move(states_by_node[static_cast<std::size_t>(t)]));
  }
  return result;
}

bio::ProteinAlignment simulate_protein_alignment(const tree::Tree& tree,
                                                 const model::GeneralModel& model,
                                                 std::int64_t sites, Rng& rng) {
  MINIPHI_CHECK(model.states() == bio::kAaStates,
                "simulate_protein_alignment: model must have 20 states");
  auto result = simulate_general(tree, model, sites, rng);
  return bio::ProteinAlignment(std::move(result.names), std::move(result.rows));
}

}  // namespace miniphi::simulate
