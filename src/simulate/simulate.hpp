// Sequence evolution simulator — the stand-in for INDELible V1.03.
//
// The paper's evaluation datasets (Section VI-A3) are INDELible simulations:
// 15 taxa, 10 K to 4 M DNA sites.  INDELible itself is not redistributable
// here, so this module implements the identical substitution-only process:
// a root sequence drawn from the stationary distribution evolves down a tree
// under GTR+Γ, with each site assigned one of the four discrete rate
// categories.  (The paper simulates without indels — alignment width is
// fixed — so indel modeling is deliberately out of scope.)
#pragma once

#include <cstdint>
#include <vector>

#include "src/bio/alignment.hpp"
#include "src/bio/protein_alignment.hpp"
#include "src/model/general.hpp"
#include "src/model/gtr.hpp"
#include "src/tree/tree.hpp"
#include "src/util/rng.hpp"

namespace miniphi::simulate {

/// Random ultrametric-ish tree from a Yule (pure-birth) process: waiting
/// times between speciations are Exponential(k·birth_rate) with k current
/// lineages; branch lengths are scaled so the expected root-to-tip path is
/// `target_depth` substitutions.
tree::Tree yule_tree(int taxon_count, Rng& rng, double target_depth = 0.5);

struct SimulationOptions {
  std::int64_t sites = 1000;
  /// If true, the returned alignment records which Γ category each site
  /// used (retrievable via SimulationResult::site_categories).
  bool record_categories = false;
};

struct SimulationResult {
  bio::Alignment alignment;
  std::vector<std::uint8_t> site_categories;  ///< empty unless requested
};

/// Simulates one alignment over `tree` under `model`.  Taxon `i` of the
/// result is named "t<i>" and corresponds to tree tip `i`.
SimulationResult simulate_alignment(const tree::Tree& tree, const model::GtrModel& model,
                                    const SimulationOptions& options, Rng& rng);

/// Convenience: the paper's dataset recipe — 15 taxa, given width, GTR+Γ
/// with mildly non-uniform parameters, all driven by one seed.
bio::Alignment paper_dataset(std::int64_t sites, std::uint64_t seed, int taxon_count = 15);

/// Simulates sequence evolution under an arbitrary-state model (proteins,
/// or any GeneralModel); returns dense state-index rows, taxon i named t<i>.
struct GeneralSimulationResult {
  std::vector<std::string> names;
  std::vector<std::vector<std::uint8_t>> rows;
};
GeneralSimulationResult simulate_general(const tree::Tree& tree,
                                         const model::GeneralModel& model, std::int64_t sites,
                                         Rng& rng);

/// Protein convenience: 20-state simulation wrapped into a ProteinAlignment.
bio::ProteinAlignment simulate_protein_alignment(const tree::Tree& tree,
                                                 const model::GeneralModel& model,
                                                 std::int64_t sites, Rng& rng);

}  // namespace miniphi::simulate
