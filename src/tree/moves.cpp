#include "src/tree/moves.hpp"

#include "src/util/error.hpp"

namespace miniphi::tree {

PruneRecord prune(Tree& tree, Slot* p) {
  MINIPHI_ASSERT(p != nullptr && !p->is_tip());
  MINIPHI_ASSERT(p->back != nullptr);
  Slot* a = p->next;
  Slot* b = p->next->next;
  MINIPHI_ASSERT(a->back != nullptr && b->back != nullptr);

  PruneRecord record;
  record.pruned = p;
  record.left = a->back;
  record.right = b->back;
  record.left_length = a->length;
  record.right_length = b->length;

  tree.disconnect(a);
  tree.disconnect(b);
  tree.connect(record.left, record.right, record.left_length + record.right_length);
  return record;
}

void regraft(Tree& tree, const PruneRecord& record, Slot* e, double split_ratio) {
  MINIPHI_ASSERT(e != nullptr && e->back != nullptr);
  MINIPHI_ASSERT(split_ratio > 0.0 && split_ratio < 1.0);
  Slot* p = record.pruned;
  MINIPHI_ASSERT(p->next->back == nullptr && p->next->next->back == nullptr);
  MINIPHI_ASSERT(e != p->next && e != p->next->next);

  Slot* other = e->back;
  const double length = e->length;
  tree.disconnect(e);
  tree.connect(e, p->next, length * split_ratio);
  tree.connect(other, p->next->next, length * (1.0 - split_ratio));
}

void ungraft(Tree& tree, const PruneRecord& record) {
  Slot* p = record.pruned;
  Slot* a = p->next;
  Slot* b = p->next->next;
  MINIPHI_ASSERT(a->back != nullptr && b->back != nullptr);
  Slot* left = a->back;
  Slot* right = b->back;
  const double total = a->length + b->length;
  tree.disconnect(a);
  tree.disconnect(b);
  tree.connect(left, right, total);
}

void undo_prune(Tree& tree, const PruneRecord& record) {
  Slot* p = record.pruned;
  MINIPHI_ASSERT(p->next->back == nullptr && p->next->next->back == nullptr);
  // The joined edge is (left, right); split it back to the original lengths.
  MINIPHI_ASSERT(record.left->back == record.right);
  tree.disconnect(record.left);
  tree.connect(record.left, p->next, record.left_length);
  tree.connect(record.right, p->next->next, record.right_length);
}

bool nni(Tree& tree, Slot* p, int variant) {
  MINIPHI_ASSERT(variant == 0 || variant == 1);
  Slot* q = p->back;
  if (p->is_tip() || q->is_tip()) return false;

  // Subtrees: on p's side A = p->next, B = p->next->next;
  //           on q's side C = q->next, D = q->next->next.
  Slot* b = p->next->next;
  Slot* c = (variant == 0) ? q->next : q->next->next;

  Slot* b_sub = b->back;
  Slot* c_sub = c->back;
  const double b_len = b->length;
  const double c_len = c->length;

  tree.disconnect(b);
  tree.disconnect(c);
  tree.connect(b, c_sub, c_len);
  tree.connect(c, b_sub, b_len);
  return true;
}

namespace {

void collect_edges(Slot* from, int depth, std::vector<Slot*>& out) {
  // `from` is a slot pointing into the region to explore; the edge
  // (from, from->back) is itself a candidate.
  out.push_back(from);
  if (depth <= 1 || from->back->is_tip()) return;
  Slot* q = from->back;
  collect_edges(q->next, depth - 1, out);
  collect_edges(q->next->next, depth - 1, out);
}

}  // namespace

std::vector<Slot*> insertion_candidates(const PruneRecord& record, int radius) {
  MINIPHI_ASSERT(radius >= 1);
  std::vector<Slot*> out;
  // After prune(), left and right are joined.  Walk outward from both sides.
  // The joined edge (left,right) itself is excluded: re-inserting there
  // recreates the original topology.
  Slot* left = record.left;
  Slot* right = record.right;
  if (!left->is_tip()) {
    collect_edges(left->next, radius, out);
    collect_edges(left->next->next, radius, out);
  }
  if (!right->is_tip()) {
    collect_edges(right->next, radius, out);
    collect_edges(right->next->next, radius, out);
  }
  return out;
}

}  // namespace miniphi::tree
