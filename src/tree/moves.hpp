// Topology rearrangements: subtree pruning and regrafting (SPR) and
// nearest-neighbor interchange (NNI), with exact undo.
//
// The ML search (RAxML-Light's "lazy SPR" scheme, which both programs in the
// paper use) prunes a subtree, tries insertions into all edges within a
// rearrangement radius, and keeps the best.  These primitives are pure
// topology operations; likelihood bookkeeping (CLA invalidation) is the
// engine's job and is driven by the records returned here.
#pragma once

#include <vector>

#include "src/tree/tree.hpp"

namespace miniphi::tree {

/// Result of prune(): everything needed to undo or to regraft elsewhere.
struct PruneRecord {
  Slot* pruned = nullptr;  ///< inner slot whose back holds the pruned subtree
  Slot* left = nullptr;    ///< one former neighbor (now joined to right)
  Slot* right = nullptr;   ///< the other former neighbor
  double left_length = 0.0;
  double right_length = 0.0;
};

/// Prunes the subtree hanging at `p->back`, where `p` is an inner slot.
/// After the call, p->next and p->next->next are free and the two former
/// neighbors are joined by a branch of the summed length.
/// Requires: p is inner; its two sibling slots are connected.
PruneRecord prune(Tree& tree, Slot* p);

/// Inserts the pruned node into the edge (e, e->back): the edge is split and
/// the two halves get `split_ratio` / 1-split_ratio of its length; the
/// reattachment branch at `p` keeps its current length.
void regraft(Tree& tree, const PruneRecord& record, Slot* e, double split_ratio = 0.5);

/// Exactly reverses a prune (the subtree must not be currently grafted).
void undo_prune(Tree& tree, const PruneRecord& record);

/// Removes the current graft of `record.pruned` (after a regraft), restoring
/// the pruned state so another insertion can be tried.
void ungraft(Tree& tree, const PruneRecord& record);

/// The two possible NNI rearrangements across the internal edge (p, p->back).
/// `variant` is 0 or 1.  Returns false (doing nothing) if the edge is not
/// internal.  Applying the same variant twice restores the original topology.
bool nni(Tree& tree, Slot* p, int variant);

/// All candidate insertion edges within `radius` nodes of the prune point,
/// excluding the two edges adjacent to it (inserting there is a no-op).
/// Radius 1 = edges touching the immediate neighbors, as in RAxML's
/// rearrangement-radius bounded SPR.
std::vector<Slot*> insertion_candidates(const PruneRecord& record, int radius);

}  // namespace miniphi::tree
