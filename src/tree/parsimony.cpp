#include "src/tree/parsimony.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/util/error.hpp"

namespace miniphi::tree {
namespace {

/// Computes Fitch state sets for the subtree *behind* `slot` (the side away
/// from slot->back) and accumulates the weighted mutation cost.
std::vector<bio::DnaCode> fitch_down(const Slot* slot, const bio::PatternSet& patterns,
                                     std::uint64_t& cost) {
  const std::size_t npat = patterns.pattern_count();
  if (slot->is_tip()) {
    return patterns.tip_rows[static_cast<std::size_t>(slot->node_id)];
  }
  const auto s1 = fitch_down(slot->child1(), patterns, cost);
  const auto s2 = fitch_down(slot->child2(), patterns, cost);
  std::vector<bio::DnaCode> out(npat);
  for (std::size_t p = 0; p < npat; ++p) {
    const bio::DnaCode inter = static_cast<bio::DnaCode>(s1[p] & s2[p]);
    if (inter != 0) {
      out[p] = inter;
    } else {
      out[p] = static_cast<bio::DnaCode>(s1[p] | s2[p]);
      cost += patterns.weights[p];
    }
  }
  return out;
}

/// Fitch score of the (possibly partial) tree containing `anchor_tip`.
std::uint64_t fitch_score_component(const Slot* anchor_tip, const bio::PatternSet& patterns) {
  MINIPHI_ASSERT(anchor_tip->is_tip() && anchor_tip->back != nullptr);
  std::uint64_t cost = 0;
  const auto states = fitch_down(anchor_tip->back, patterns, cost);
  const auto& anchor_row = patterns.tip_rows[static_cast<std::size_t>(anchor_tip->node_id)];
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    if ((states[p] & anchor_row[p]) == 0) cost += patterns.weights[p];
  }
  return cost;
}

/// Collects one canonical slot per edge of the component behind `slot`.
void collect_component_edges(Slot* slot, std::vector<Slot*>& out) {
  out.push_back(slot);  // edge (slot, slot->back)
  if (slot->back->is_tip()) return;
  collect_component_edges(slot->back->next, out);
  collect_component_edges(slot->back->next->next, out);
}

}  // namespace

std::uint64_t fitch_score(const Tree& tree, const bio::PatternSet& patterns) {
  MINIPHI_CHECK(static_cast<std::size_t>(tree.taxon_count()) == patterns.taxon_count(),
                "fitch_score: tree and patterns disagree on taxon count");
  return fitch_score_component(tree.tip(0), patterns);
}

Tree parsimony_starting_tree(const bio::PatternSet& patterns, Rng& rng) {
  const int ntaxa = static_cast<int>(patterns.taxon_count());
  MINIPHI_CHECK(ntaxa >= 3, "parsimony_starting_tree: need at least 3 taxa");
  Tree tree(ntaxa);

  std::vector<int> order(static_cast<std::size_t>(ntaxa));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  tree.connect(tree.tip(order[0]), tree.inner_slot(0, 0), kDefaultBranchLength);
  tree.connect(tree.tip(order[1]), tree.inner_slot(0, 1), kDefaultBranchLength);
  tree.connect(tree.tip(order[2]), tree.inner_slot(0, 2), kDefaultBranchLength);

  for (int i = 3; i < ntaxa; ++i) {
    Slot* tip = tree.tip(order[static_cast<std::size_t>(i)]);
    Slot* anchor = tree.tip(order[0]);

    std::vector<Slot*> edges;
    collect_component_edges(anchor, edges);

    Slot* hub0 = tree.inner_slot(i - 2, 0);
    Slot* hub1 = tree.inner_slot(i - 2, 1);
    Slot* hub2 = tree.inner_slot(i - 2, 2);

    Slot* best_edge = nullptr;
    std::uint64_t best_score = std::numeric_limits<std::uint64_t>::max();
    for (Slot* edge : edges) {
      // Tentatively insert, score, remove.
      Slot* other = edge->back;
      const double length = edge->length;
      tree.disconnect(edge);
      tree.connect(edge, hub0, length * 0.5);
      tree.connect(other, hub1, length * 0.5);
      tree.connect(tip, hub2, kDefaultBranchLength);

      const std::uint64_t score = fitch_score_component(anchor, patterns);
      if (score < best_score) {
        best_score = score;
        best_edge = edge;
      }

      tree.disconnect(edge);
      tree.disconnect(other);
      tree.disconnect(tip);
      tree.connect(edge, other, length);
    }
    MINIPHI_ASSERT(best_edge != nullptr);

    Slot* other = best_edge->back;
    const double length = best_edge->length;
    tree.disconnect(best_edge);
    tree.connect(best_edge, hub0, length * 0.5);
    tree.connect(other, hub1, length * 0.5);
    tree.connect(tip, hub2, kDefaultBranchLength);
  }
  tree.validate();
  return tree;
}

}  // namespace miniphi::tree
