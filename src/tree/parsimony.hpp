// Fitch parsimony and randomized stepwise-addition starting trees.
//
// RAxML-Light and ExaML start their ML searches from randomized
// stepwise-addition parsimony trees: taxa are added in random order, each at
// the position minimizing the Fitch parsimony score.  The 4-bit DNA encoding
// makes Fitch a pair of bitwise ops per pattern.
#pragma once

#include <cstdint>

#include "src/bio/patterns.hpp"
#include "src/tree/tree.hpp"
#include "src/util/rng.hpp"

namespace miniphi::tree {

/// Weighted Fitch parsimony score of a complete tree.
std::uint64_t fitch_score(const Tree& tree, const bio::PatternSet& patterns);

/// Builds a starting topology by randomized stepwise addition under
/// parsimony; ties are broken by insertion order (deterministic given seed).
Tree parsimony_starting_tree(const bio::PatternSet& patterns, Rng& rng);

}  // namespace miniphi::tree
