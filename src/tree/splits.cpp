#include "src/tree/splits.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace miniphi::tree {
namespace {

Split make_split(std::size_t words) { return Split(words, 0); }

void set_bit(Split& split, int taxon) {
  split[static_cast<std::size_t>(taxon) / 64] |= (std::uint64_t{1} << (taxon % 64));
}

bool test_bit(const Split& split, int taxon) {
  return (split[static_cast<std::size_t>(taxon) / 64] >> (taxon % 64)) & 1u;
}

void or_into(Split& into, const Split& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] |= from[i];
}

/// Post-order accumulation of the taxon set below each inner slot.
Split subtree_taxa(const Slot* s, std::size_t words, std::set<Split>& out, int ntaxa) {
  if (s->is_tip()) {
    Split split = make_split(words);
    set_bit(split, s->node_id);
    return split;
  }
  Split split = subtree_taxa(s->child1(), words, out, ntaxa);
  const Split other = subtree_taxa(s->child2(), words, out, ntaxa);
  or_into(split, other);

  // The edge (s, s->back) induces this split; record it if non-trivial.
  int bits = 0;
  for (const auto word : split) bits += __builtin_popcountll(word);
  if (bits >= 2 && bits <= ntaxa - 2) {
    Split canonical = split;
    if (test_bit(canonical, 0)) {
      // Complement so that taxon 0 is never in the stored side.
      for (std::size_t i = 0; i < canonical.size(); ++i) canonical[i] = ~canonical[i];
      // Clear bits beyond ntaxa.
      const int tail = ntaxa % 64;
      if (tail != 0) canonical.back() &= (std::uint64_t{1} << tail) - 1;
    }
    out.insert(canonical);
  }
  return split;
}

}  // namespace

std::set<Split> tree_splits(const Tree& tree) {
  const int ntaxa = tree.taxon_count();
  const std::size_t words = (static_cast<std::size_t>(ntaxa) + 63) / 64;
  std::set<Split> out;
  // Root the traversal at tip 0's branch; every edge is visited exactly once.
  const Slot* start = tree.tip(0)->back;
  subtree_taxa(start, words, out, ntaxa);
  return out;
}

int robinson_foulds(const Tree& a, const Tree& b) {
  MINIPHI_CHECK(a.taxon_count() == b.taxon_count(),
                "RF distance requires identical taxon sets");
  const auto sa = tree_splits(a);
  const auto sb = tree_splits(b);
  std::size_t common = 0;
  for (const auto& split : sa) {
    if (sb.count(split)) ++common;
  }
  return static_cast<int>(sa.size() + sb.size() - 2 * common);
}

double robinson_foulds_normalized(const Tree& a, const Tree& b) {
  const int max_rf = 2 * (a.taxon_count() - 3);
  if (max_rf == 0) return 0.0;
  return static_cast<double>(robinson_foulds(a, b)) / max_rf;
}

}  // namespace miniphi::tree
