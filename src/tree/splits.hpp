// Bipartitions (splits) and Robinson–Foulds distance.
//
// A branch of an unrooted tree bipartitions the taxon set; the multiset of
// non-trivial bipartitions identifies the topology.  Used by tests (move
// round-trips, search determinism) and by the examples to compare inferred
// trees against the simulation's true tree.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "src/tree/tree.hpp"

namespace miniphi::tree {

/// One side of a bipartition as a canonical bitset over taxon ids (the side
/// not containing taxon 0, so representation is unique).
using Split = std::vector<std::uint64_t>;

/// All non-trivial splits of the tree (edges between two inner nodes).
std::set<Split> tree_splits(const Tree& tree);

/// Robinson–Foulds distance: |A Δ B| over non-trivial split sets.
/// 0 iff the topologies are identical; maximum is 2(n-3).
int robinson_foulds(const Tree& a, const Tree& b);

/// Normalized RF in [0,1].
double robinson_foulds_normalized(const Tree& a, const Tree& b);

}  // namespace miniphi::tree
