#include "src/tree/tree.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <unordered_map>

#include "src/util/error.hpp"

namespace miniphi::tree {

Tree::Tree(int taxon_count) : ntaxa_(taxon_count) {
  MINIPHI_CHECK(taxon_count >= 3, "an unrooted binary tree needs at least 3 taxa");
  slots_.reserve(static_cast<std::size_t>(4 * taxon_count - 6));
  // Tips: one slot each, node ids 0..n-1.
  for (int i = 0; i < taxon_count; ++i) {
    Slot* s = allocate_slot();
    s->node_id = i;
    s->next = nullptr;
  }
  // Inner nodes: triplets with next-cycles, node ids n..2n-3.
  for (int i = 0; i < taxon_count - 2; ++i) {
    Slot* a = allocate_slot();
    Slot* b = allocate_slot();
    Slot* c = allocate_slot();
    a->node_id = b->node_id = c->node_id = taxon_count + i;
    a->next = b;
    b->next = c;
    c->next = a;
  }
}

Slot* Tree::allocate_slot() {
  auto s = std::make_unique<Slot>();
  s->slot_index = static_cast<int>(slots_.size());
  slots_.push_back(std::move(s));
  return slots_.back().get();
}

Tree::Tree(const Tree& other) { copy_from(other); }

Tree& Tree::operator=(const Tree& other) {
  if (this != &other) {
    slots_.clear();
    copy_from(other);
  }
  return *this;
}

void Tree::copy_from(const Tree& other) {
  ntaxa_ = other.ntaxa_;
  slots_.reserve(other.slots_.size());
  for (const auto& s : other.slots_) {
    Slot* copy = allocate_slot();
    copy->node_id = s->node_id;
    copy->length = s->length;
  }
  // Re-link by index.
  for (std::size_t i = 0; i < other.slots_.size(); ++i) {
    const Slot* src = other.slots_[i].get();
    Slot* dst = slots_[i].get();
    dst->next = src->next ? slots_[static_cast<std::size_t>(src->next->slot_index)].get() : nullptr;
    dst->back = src->back ? slots_[static_cast<std::size_t>(src->back->slot_index)].get() : nullptr;
  }
}

Slot* Tree::tip(int i) {
  MINIPHI_ASSERT(i >= 0 && i < ntaxa_);
  return slots_[static_cast<std::size_t>(i)].get();
}

const Slot* Tree::tip(int i) const {
  MINIPHI_ASSERT(i >= 0 && i < ntaxa_);
  return slots_[static_cast<std::size_t>(i)].get();
}

Slot* Tree::inner_slot(int inner, int k) {
  MINIPHI_ASSERT(inner >= 0 && inner < inner_count() && k >= 0 && k < 3);
  return slots_[static_cast<std::size_t>(ntaxa_ + 3 * inner + k)].get();
}

void Tree::connect(Slot* a, Slot* b, double length) {
  MINIPHI_ASSERT(a != nullptr && b != nullptr && a != b);
  MINIPHI_ASSERT(a->back == nullptr && b->back == nullptr);
  a->back = b;
  b->back = a;
  a->length = length;
  b->length = length;
}

void Tree::disconnect(Slot* a) {
  MINIPHI_ASSERT(a != nullptr && a->back != nullptr);
  a->back->back = nullptr;
  a->back = nullptr;
}

void Tree::set_length(Slot* a, double length) {
  MINIPHI_ASSERT(a != nullptr && a->back != nullptr);
  MINIPHI_ASSERT(length >= 0.0);
  a->length = length;
  a->back->length = length;
}

std::vector<Slot*> Tree::edges() {
  std::vector<Slot*> out;
  out.reserve(static_cast<std::size_t>(edge_count()));
  for (const auto& s : slots_) {
    if (s->back != nullptr && s->slot_index < s->back->slot_index) out.push_back(s.get());
  }
  return out;
}

std::vector<const Slot*> Tree::edges() const {
  std::vector<const Slot*> out;
  out.reserve(static_cast<std::size_t>(edge_count()));
  for (const auto& s : slots_) {
    if (s->back != nullptr && s->slot_index < s->back->slot_index) out.push_back(s.get());
  }
  return out;
}

void Tree::validate() const {
  std::size_t connected = 0;
  for (const auto& s : slots_) {
    if (s->back != nullptr) {
      MINIPHI_CHECK(s->back->back == s.get(), "tree: back pointers are not symmetric");
      MINIPHI_CHECK(s->back->length == s->length, "tree: branch lengths are inconsistent");
      MINIPHI_CHECK(s->length >= 0.0, "tree: negative branch length");
      ++connected;
    }
    if (!s->is_tip()) {
      MINIPHI_CHECK(s->next->next->next == s.get(), "tree: inner slot cycle is not a 3-cycle");
      MINIPHI_CHECK(s->next->node_id == s->node_id, "tree: inner cycle spans nodes");
    }
  }
  MINIPHI_CHECK(connected == static_cast<std::size_t>(2 * edge_count()),
                "tree: not fully connected (" + std::to_string(connected / 2) + "/" +
                    std::to_string(edge_count()) + " edges)");

  // Reachability: everything must be in one component.
  std::vector<bool> seen(slots_.size(), false);
  std::vector<const Slot*> stack = {slots_[0].get()};
  std::size_t visited = 0;
  while (!stack.empty()) {
    const Slot* s = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(s->slot_index)]) continue;
    // Mark the whole node (all slots in the cycle).
    const Slot* it = s;
    do {
      seen[static_cast<std::size_t>(it->slot_index)] = true;
      ++visited;
      if (it->back != nullptr && !seen[static_cast<std::size_t>(it->back->slot_index)]) {
        stack.push_back(it->back);
      }
      it = it->next;
    } while (it != nullptr && it != s);
  }
  MINIPHI_CHECK(visited == slots_.size(), "tree: disconnected components");
}

std::vector<Slot*> Tree::traversal(Slot* goal,
                                   const std::function<bool(const Slot*)>& needs_compute) const {
  std::vector<Slot*> order;
  // Iterative post-order over slots that need recomputation.
  struct Frame {
    Slot* slot;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({goal, false});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    Slot* s = frame.slot;
    if (s->is_tip() || !needs_compute(s)) {
      stack.pop_back();
      continue;
    }
    if (frame.expanded) {
      order.push_back(s);
      stack.pop_back();
      continue;
    }
    frame.expanded = true;
    stack.push_back({s->child1(), false});
    stack.push_back({s->child2(), false});
  }
  return order;
}

std::vector<Slot*> Tree::full_traversal(Slot* goal) const {
  return traversal(goal, [](const Slot*) { return true; });
}

Tree Tree::random(int taxon_count, Rng& rng) {
  Tree t(taxon_count);
  const auto branch = [&rng]() { return rng.uniform(0.05, 0.5); };

  // Start with the 3-taxon star around inner node 0.
  t.connect(t.tip(0), t.inner_slot(0, 0), branch());
  t.connect(t.tip(1), t.inner_slot(0, 1), branch());
  t.connect(t.tip(2), t.inner_slot(0, 2), branch());

  // Insert each further tip into a uniformly chosen existing edge, using
  // inner node (i-2) as the attachment point.
  for (int i = 3; i < taxon_count; ++i) {
    auto current_edges = t.edges();
    // Only consider edges between already-attached nodes.
    std::vector<Slot*> attached;
    for (Slot* e : current_edges) attached.push_back(e);
    Slot* edge = attached[rng.below(attached.size())];
    Slot* other = edge->back;
    const double old_length = edge->length;

    Slot* hub0 = t.inner_slot(i - 2, 0);
    Slot* hub1 = t.inner_slot(i - 2, 1);
    Slot* hub2 = t.inner_slot(i - 2, 2);
    t.disconnect(edge);
    const double split = rng.uniform(0.2, 0.8);
    t.connect(edge, hub0, old_length * split);
    t.connect(other, hub1, old_length * (1.0 - split));
    t.connect(t.tip(i), hub2, branch());
  }
  t.validate();
  return t;
}

namespace {

/// Recursively connects the AST subtree under `ast` to the free slot `attach`;
/// `next_inner` hands out unused inner triplets.
void build_subtree(Tree& tree, const io::NewickNode& ast, Slot* attach, double length,
                   const std::unordered_map<std::string, int>& tip_ids, int& next_inner) {
  if (ast.is_leaf()) {
    const auto it = tip_ids.find(ast.name);
    MINIPHI_CHECK(it != tip_ids.end(), "Newick leaf '" + ast.name + "' not in taxon set");
    Slot* leaf = tree.tip(it->second);
    MINIPHI_CHECK(leaf->back == nullptr, "Newick: taxon '" + ast.name + "' appears twice");
    tree.connect(attach, leaf, length);
    return;
  }
  MINIPHI_CHECK(ast.children.size() == 2,
                "Newick: only binary trees are supported (node has " +
                    std::to_string(ast.children.size()) + " children)");
  MINIPHI_CHECK(next_inner < tree.inner_count(), "Newick: too many inner nodes");
  const int inner = next_inner++;
  Slot* hub0 = tree.inner_slot(inner, 0);
  tree.connect(attach, hub0, length);
  build_subtree(tree, *ast.children[0], tree.inner_slot(inner, 1),
                ast.children[0]->length.value_or(kDefaultBranchLength), tip_ids, next_inner);
  build_subtree(tree, *ast.children[1], tree.inner_slot(inner, 2),
                ast.children[1]->length.value_or(kDefaultBranchLength), tip_ids, next_inner);
}

}  // namespace

Tree Tree::from_newick(const io::NewickNode& root, const std::vector<std::string>& taxon_names) {
  const std::size_t ntaxa = root.leaf_count();
  MINIPHI_CHECK(ntaxa == taxon_names.size(),
                "Newick tree has " + std::to_string(ntaxa) + " leaves but " +
                    std::to_string(taxon_names.size()) + " taxon names were given");
  std::unordered_map<std::string, int> tip_ids;
  for (std::size_t i = 0; i < taxon_names.size(); ++i) {
    MINIPHI_CHECK(tip_ids.emplace(taxon_names[i], static_cast<int>(i)).second,
                  "duplicate taxon name '" + taxon_names[i] + "'");
  }

  Tree tree(static_cast<int>(ntaxa));
  int next_inner = 0;

  // Normalize the root: we need a degree-3 start point.  A binary (rooted)
  // root is collapsed by fusing its two child branches.
  const io::NewickNode* start = &root;
  MINIPHI_CHECK(!start->is_leaf(), "Newick: tree has a single leaf");
  if (start->children.size() == 2) {
    // Rooted: collapse.  Attach child B's subtree onto the edge to child A.
    const io::NewickNode* a = start->children[0].get();
    const io::NewickNode* b = start->children[1].get();
    const double fused =
        a->length.value_or(kDefaultBranchLength) + b->length.value_or(kDefaultBranchLength);
    // Build the subtree of whichever child is internal; if both are leaves
    // the tree has 2 taxa, which is rejected by the Tree constructor.
    const io::NewickNode* internal = !a->is_leaf() ? a : b;
    const io::NewickNode* other = (internal == a) ? b : a;
    MINIPHI_CHECK(!internal->is_leaf(), "Newick: 2-taxon trees are not supported");
    MINIPHI_CHECK(internal->children.size() == 2, "Newick: only binary trees are supported");
    const int inner = next_inner++;
    build_subtree(tree, *internal->children[0], tree.inner_slot(inner, 1),
                  internal->children[0]->length.value_or(kDefaultBranchLength), tip_ids,
                  next_inner);
    build_subtree(tree, *internal->children[1], tree.inner_slot(inner, 2),
                  internal->children[1]->length.value_or(kDefaultBranchLength), tip_ids,
                  next_inner);
    build_subtree(tree, *other, tree.inner_slot(inner, 0), fused, tip_ids, next_inner);
  } else if (start->children.size() == 3) {
    const int inner = next_inner++;
    for (int k = 0; k < 3; ++k) {
      const io::NewickNode* child = start->children[static_cast<std::size_t>(k)].get();
      build_subtree(tree, *child, tree.inner_slot(inner, k),
                    child->length.value_or(kDefaultBranchLength), tip_ids, next_inner);
    }
  } else {
    throw Error("Newick: root must have 2 or 3 children, found " +
                std::to_string(start->children.size()));
  }
  tree.validate();
  return tree;
}

namespace {

void append_subtree(const Slot* s, const std::vector<std::string>& names, std::ostream& out) {
  if (s->is_tip()) {
    out << names[static_cast<std::size_t>(s->node_id)];
  } else {
    out << '(';
    append_subtree(s->child1(), names, out);
    out << ':' << s->next->length << ',';
    append_subtree(s->child2(), names, out);
    out << ':' << s->next->next->length;
    out << ')';
  }
}

}  // namespace

std::string Tree::to_newick(const std::vector<std::string>& taxon_names,
                            const Slot* root_edge) const {
  MINIPHI_CHECK(static_cast<int>(taxon_names.size()) == ntaxa_,
                "to_newick: wrong number of taxon names");
  const Slot* p = root_edge ? root_edge : tip(0);
  MINIPHI_ASSERT(p->back != nullptr);
  std::ostringstream out;
  out << std::setprecision(17);  // branch lengths must survive round trips
  // Render as (subtree-at-p, subtree-at-back) with the branch length split
  // onto the back side, RAxML-style.
  out << '(';
  append_subtree(p, taxon_names, out);
  out << ":0,";
  append_subtree(p->back, taxon_names, out);
  out << ':' << p->length << ");";
  return out.str();
}

}  // namespace miniphi::tree
