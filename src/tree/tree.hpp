// Unrooted binary phylogenetic tree in the RAxML slot-triplet representation.
//
// Every tip owns one directed slot; every inner node owns three slots linked
// in a `next` cycle.  `back` connects two slots across a branch.  A
// conditional likelihood array (CLA) is associated with an *inner slot* s and
// summarizes the subtree on the far side of s's two sibling slots — exactly
// the object the paper's newview() kernel fills in.  This representation
// makes partial traversals, virtual-root placement (evaluate() at any
// branch) and SPR moves cheap, which is why RAxML uses it.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/io/newick.hpp"
#include "src/util/rng.hpp"

namespace miniphi::tree {

/// Default branch length for freshly created branches (RAxML convention).
inline constexpr double kDefaultBranchLength = 0.1;

/// Directed half-edge record.  Tips have next == nullptr.
struct Slot {
  Slot* next = nullptr;  ///< next slot in the owning inner node's cycle
  Slot* back = nullptr;  ///< slot at the other end of the branch
  double length = kDefaultBranchLength;  ///< branch length (mirrored on back)
  int node_id = -1;      ///< tip id in [0, n) or inner id in [n, 2n-2)
  int slot_index = -1;   ///< unique dense index in [0, 4n-6)

  [[nodiscard]] bool is_tip() const { return next == nullptr; }

  /// The two "children" used when computing this slot's CLA.
  [[nodiscard]] Slot* child1() const { return next->back; }
  [[nodiscard]] Slot* child2() const { return next->next->back; }
};

/// Owns the slots of one tree and provides topology operations.
class Tree {
 public:
  /// Creates n tips and n-2 inner triplets, all disconnected.
  explicit Tree(int taxon_count);

  Tree(const Tree& other);
  Tree& operator=(const Tree& other);
  Tree(Tree&&) noexcept = default;
  Tree& operator=(Tree&&) noexcept = default;

  [[nodiscard]] int taxon_count() const { return ntaxa_; }
  [[nodiscard]] int inner_count() const { return ntaxa_ - 2; }
  [[nodiscard]] int node_count() const { return 2 * ntaxa_ - 2; }
  [[nodiscard]] int edge_count() const { return 2 * ntaxa_ - 3; }
  [[nodiscard]] int slot_count() const { return static_cast<int>(slots_.size()); }

  /// The unique slot of tip `i` (0-based taxon index).
  [[nodiscard]] Slot* tip(int i);
  [[nodiscard]] const Slot* tip(int i) const;

  /// Slot `k` (0..2) of inner node `inner` (0-based inner index).
  [[nodiscard]] Slot* inner_slot(int inner, int k);

  [[nodiscard]] Slot* slot(int slot_index) { return slots_[static_cast<std::size_t>(slot_index)].get(); }
  [[nodiscard]] const Slot* slot(int slot_index) const {
    return slots_[static_cast<std::size_t>(slot_index)].get();
  }

  /// Connects two free slots with a branch of the given length.
  void connect(Slot* a, Slot* b, double length);

  /// Breaks the branch at `a` (and its back); both ends become free.
  void disconnect(Slot* a);

  /// Sets the branch length on the edge (a, a->back) consistently.
  static void set_length(Slot* a, double length);

  /// One canonical slot per edge (the one with the smaller slot_index).
  [[nodiscard]] std::vector<Slot*> edges();
  [[nodiscard]] std::vector<const Slot*> edges() const;

  /// Verifies structural invariants: back symmetry, 3-cycles, full
  /// connectivity, consistent lengths.  Throws on violation.
  void validate() const;

  /// Post-order list of inner slots whose CLA must be computed so that the
  /// CLA for `goal` is available; `needs_compute(slot)` returns false to
  /// prune already-valid subtrees (partial traversals).  `goal` itself is
  /// included (last) when it is an inner slot that needs computing.
  [[nodiscard]] std::vector<Slot*> traversal(
      Slot* goal, const std::function<bool(const Slot*)>& needs_compute) const;

  /// Full traversal: every inner CLA toward `goal` recomputed.
  [[nodiscard]] std::vector<Slot*> full_traversal(Slot* goal) const;

  /// Builds a uniformly random topology by sequential addition, with
  /// branch lengths drawn uniformly from [0.05, 0.5).
  static Tree random(int taxon_count, Rng& rng);

  /// Builds from a parsed Newick AST.  The AST may be rooted (binary root);
  /// the root is collapsed to produce the unrooted topology.  `taxon_names`
  /// fixes the tip-id mapping; all leaf names must be present in it.
  static Tree from_newick(const io::NewickNode& root, const std::vector<std::string>& taxon_names);

  /// Serializes to Newick, rooted at the branch of `root_edge` (default:
  /// the branch at tip 0).  Tip `i` is written as taxon_names[i].
  [[nodiscard]] std::string to_newick(const std::vector<std::string>& taxon_names,
                                      const Slot* root_edge = nullptr) const;

 private:
  Slot* allocate_slot();
  void copy_from(const Tree& other);

  int ntaxa_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace miniphi::tree
