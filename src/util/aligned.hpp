// 64-byte-aligned storage for conditional likelihood arrays (CLAs).
//
// The paper (Section V-B2) requires all vectors touched by the PLF kernels
// to start on 64-byte boundaries so that 512-bit vector loads/stores stay
// aligned.  For DNA under GAMMA the per-site block is 16 doubles = 128 bytes,
// so element offsets remain aligned automatically once the base is.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace miniphi {

/// Cache-line / vector alignment used throughout the kernels (bytes).
inline constexpr std::size_t kVectorAlignment = 64;

/// Minimal allocator that over-aligns every allocation to `Align` bytes.
template <typename T, std::size_t Align = kVectorAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment must not be weaker than T's");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

/// Contiguous 64-byte-aligned array of doubles; the storage type of all CLAs,
/// transition matrices and summation buffers in the likelihood core.
using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

/// True iff `p` is aligned to the kernel vector alignment.
inline bool is_vector_aligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (kVectorAlignment - 1)) == 0;
}

}  // namespace miniphi
