#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/util/error.hpp"

namespace miniphi {

/// Thrown by CancelToken::check() when a job is cancelled or its deadline
/// expires.  Subclasses Error so existing catch(const Error&) diagnostics
/// keep working, but callers that care (the service, the worker pool's
/// rethrow preference) can catch it specifically.
class CancelledError : public Error {
 public:
  CancelledError(const std::string& what, bool deadline_expired)
      : Error(what), deadline_expired_(deadline_expired) {}

  /// True when the cancellation was caused by deadline expiry rather than
  /// an explicit cancel() — the two map to different service statuses
  /// (MINIPHI_ERROR_DEADLINE_EXCEEDED vs MINIPHI_ERROR_CANCELLED).
  bool deadline_expired() const { return deadline_expired_; }

 private:
  bool deadline_expired_;
};

/// Cooperative cancellation token shared between a job's owner (who calls
/// cancel() or set_deadline()) and the engine executing it (which calls
/// check() at plan-level boundaries).  All state is atomic: the owner and
/// the executing threads never take a lock, so a check() in the newview
/// hot path costs one relaxed load on the happy path.
///
/// The token is level-triggered: once cancelled (explicitly or by
/// deadline) every subsequent check() throws, so a multi-engine evaluator
/// (partitioned, fork-join) converges to the unwind no matter which
/// worker observes the cancellation first.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Request cancellation.  Idempotent; safe from any thread.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm an absolute deadline.  A zero time_since_epoch clears it.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }

  /// Arm a deadline `budget` from now.
  void set_deadline_after(Clock::duration budget) { set_deadline(Clock::now() + budget); }

  /// Chaos hook (FaultPlan-style, DESIGN.md §9): trip on the Nth check()
  /// observed by the executing engine — a deterministic mid-kernel kill.
  /// `as_deadline` selects which structured error the victim reports.
  void arm_trip_after(std::int64_t checks, bool as_deadline = false) {
    trip_as_deadline_.store(as_deadline, std::memory_order_relaxed);
    trip_at_check_.store(checks, std::memory_order_relaxed);
  }

  /// Reset every axis (flag, deadline, chaos trip, check counter) so a
  /// token embedded in a reusable job slot starts clean.
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
    trip_at_check_.store(0, std::memory_order_relaxed);
    trip_as_deadline_.store(false, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
    expired_.store(false, std::memory_order_relaxed);
  }

  /// Non-throwing query (used by admission: don't build an evaluator for a
  /// job that died in the queue).
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return deadline_passed();
  }

  bool deadline_expired() const { return expired_.load(std::memory_order_relaxed); }

  /// Number of check() calls observed so far (test/chaos introspection).
  std::int64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  /// Cancellation point.  Throws CancelledError when the token is
  /// cancelled, tripped by the chaos hook, or past its deadline.
  void check() const {
    const std::int64_t seen = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::int64_t trip = trip_at_check_.load(std::memory_order_relaxed);
    if (trip > 0 && seen >= trip) {
      if (trip_as_deadline_.load(std::memory_order_relaxed)) {
        expired_.store(true, std::memory_order_relaxed);
      }
      cancelled_.store(true, std::memory_order_relaxed);
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      if (expired_.load(std::memory_order_relaxed)) {
        throw CancelledError("cancel: deadline exceeded", /*deadline_expired=*/true);
      }
      throw CancelledError("cancel: job cancelled", /*deadline_expired=*/false);
    }
    if (deadline_passed()) {
      throw CancelledError("cancel: deadline exceeded", /*deadline_expired=*/true);
    }
  }

 private:
  bool deadline_passed() const {
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    if (Clock::now().time_since_epoch().count() < deadline) return false;
    expired_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  // check() is conceptually const (engines hold `const CancelToken*`): the
  // counter bump and the deadline→flag latch are observations, not
  // requests, so the mutating atomics are mutable.
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> expired_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
  std::atomic<std::int64_t> trip_at_check_{0};
  std::atomic<bool> trip_as_deadline_{false};
  mutable std::atomic<std::int64_t> checks_{0};
};

}  // namespace miniphi
