// Error handling primitives shared by all miniphi modules.
//
// All recoverable failures (bad input files, malformed trees, invalid model
// parameters) throw miniphi::Error.  Internal invariant violations use
// MINIPHI_ASSERT, which is active in all build types: likelihood code that
// silently produces garbage is worse than one that stops.
#pragma once

#include <stdexcept>
#include <string>

namespace miniphi {

/// Exception type for all recoverable miniphi errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw std::logic_error(std::string("miniphi assertion failed: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace miniphi

/// Always-on invariant check; throws std::logic_error on failure.
#define MINIPHI_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::miniphi::detail::assert_fail(#expr, __FILE__, __LINE__))

/// Recoverable-error check: throws miniphi::Error with the given message.
#define MINIPHI_CHECK(expr, msg) \
  ((expr) ? static_cast<void>(0) : throw ::miniphi::Error(msg))
