// Minimal leveled logging to stderr, thread-safe, printf-free.
//
// The tree-search drivers log per-round progress at Info; the kernels log
// nothing (they are called millions of times).  Verbosity is a process-wide
// setting so examples and benches can silence the library wholesale.
#pragma once

#include <sstream>
#include <string>

namespace miniphi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

/// Stream-style log statement: MINIPHI_LOG(Info) << "round " << r;
///
/// The level check is latched once at construction: re-reading the global
/// level per << (and again in the destructor) could see the level change
/// mid-statement and emit a half-built message (or pay the streaming cost
/// only to drop it).
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  ~LogMessage() {
    if (enabled_) detail::log_line(level_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace miniphi

#define MINIPHI_LOG(severity) ::miniphi::LogMessage(::miniphi::LogLevel::k##severity)
