#include "src/util/options.hpp"

#include <charconv>
#include <cstdlib>

#include "src/util/error.hpp"

namespace miniphi {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    MINIPHI_CHECK(arg.size() > 2, "bare '--' is not a valid option");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg.substr(2)] = argv[++i];
    } else {
      values_[arg.substr(2)] = "";  // boolean flag
    }
  }
}

bool Options::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::optional<std::string> Options::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Options::get_string(const std::string& name, const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Options::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(value->data(), value->data() + value->size(), out);
  MINIPHI_CHECK(ec == std::errc() && ptr == value->data() + value->size(),
                "option --" + name + " expects an integer, got '" + *value + "'");
  return out;
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double out = std::strtod(value->c_str(), &end);
  MINIPHI_CHECK(end == value->c_str() + value->size() && !value->empty(),
                "option --" + name + " expects a number, got '" + *value + "'");
  return out;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  if (value->empty() || *value == "1" || *value == "true" || *value == "yes") return true;
  if (*value == "0" || *value == "false" || *value == "no") return false;
  throw Error("option --" + name + " expects a boolean, got '" + *value + "'");
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace miniphi
