// Tiny command-line option parser for the examples and bench drivers.
//
// Supports "--name value", "--name=value" and boolean "--flag".  Unknown
// options are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace miniphi {

class Options {
 public:
  /// Parses argv; throws miniphi::Error on malformed input.
  Options(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were parsed but never queried; used to reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace miniphi
