// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components (alignment simulation, randomized stepwise
// addition, SPR tie-breaking) draw from this generator so that every
// experiment is reproducible from a single seed printed in the bench output.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace miniphi {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// reimplemented here; passes BigCrush and is far faster than mt19937_64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// (Re-)initialize state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      // splitmix64 step
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return std::numeric_limits<std::uint64_t>::max(); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.  Uses rejection to kill bias.
  std::uint64_t below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -std::log(u) / rate;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace miniphi
