// Wall-clock timing helpers used by the instrumentation layer (Section VI-B1
// of the paper instruments total time per kernel during a full tree search).
#pragma once

#include <chrono>
#include <cstdint>

namespace miniphi {

/// Monotonic stopwatch.  start() resets; seconds() reads without stopping.
class Timer {
 public:
  Timer() { start(); }

  void start() { t0_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

  [[nodiscard]] std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0_;
};

/// Accumulates total time across many start/stop intervals, e.g. the total
/// time spent inside one PLF kernel over a whole tree search.
class CumulativeTimer {
 public:
  void start() { timer_.start(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      ++intervals_;
      running_ = false;
    }
  }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] std::int64_t intervals() const { return intervals_; }
  void reset() { total_ = 0.0; intervals_ = 0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  std::int64_t intervals_ = 0;
  bool running_ = false;
};

/// RAII interval guard for a CumulativeTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(CumulativeTimer& t) : t_(t) { t_.start(); }
  ~ScopedTimer() { t_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CumulativeTimer& t_;
};

}  // namespace miniphi
