// Tests for src/bio: DNA encoding, alignment container, pattern compression.
#include <gtest/gtest.h>

#include "src/bio/alignment.hpp"
#include "src/bio/dna.hpp"
#include "src/bio/patterns.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::bio {
namespace {

TEST(Dna, EncodesCanonicalBases) {
  EXPECT_EQ(encode_dna('A'), 0x1);
  EXPECT_EQ(encode_dna('C'), 0x2);
  EXPECT_EQ(encode_dna('G'), 0x4);
  EXPECT_EQ(encode_dna('T'), 0x8);
  EXPECT_EQ(encode_dna('a'), encode_dna('A'));
  EXPECT_EQ(encode_dna('U'), encode_dna('T'));
}

TEST(Dna, EncodesIupacAmbiguities) {
  EXPECT_EQ(encode_dna('R'), 0x1 | 0x4);  // A or G
  EXPECT_EQ(encode_dna('Y'), 0x2 | 0x8);  // C or T
  EXPECT_EQ(encode_dna('N'), kGapCode);
  EXPECT_EQ(encode_dna('-'), kGapCode);
  EXPECT_EQ(encode_dna('?'), kGapCode);
}

TEST(Dna, RejectsInvalidCharacters) {
  EXPECT_THROW(encode_dna('Z'), Error);
  EXPECT_THROW(encode_dna('1'), Error);
  EXPECT_THROW(encode_dna(' '), Error);
  EXPECT_FALSE(is_valid_dna('!'));
  EXPECT_TRUE(is_valid_dna('w'));
}

TEST(Dna, DecodeInvertsEncodeForAllCodes) {
  for (int code = 1; code < kCodeCount; ++code) {
    const char c = decode_dna(static_cast<DnaCode>(code));
    EXPECT_EQ(encode_dna(c), code);
  }
}

TEST(Dna, CardinalityCountsStates) {
  EXPECT_EQ(code_cardinality(encode_dna('A')), 1);
  EXPECT_EQ(code_cardinality(encode_dna('R')), 2);
  EXPECT_EQ(code_cardinality(encode_dna('B')), 3);
  EXPECT_EQ(code_cardinality(kGapCode), 4);
}

TEST(Dna, SequenceEncodingReportsPositionAndContext) {
  try {
    encode_sequence("ACGJ", "taxon 'bad'");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("position 4"), std::string::npos);
    EXPECT_NE(what.find("taxon 'bad'"), std::string::npos);
  }
}

TEST(Alignment, BuildsFromRecordsAndValidates) {
  io::SequenceSet records = {{"a", "ACGT"}, {"b", "AC-T"}, {"c", "NNNN"}};
  Alignment alignment(records);
  EXPECT_EQ(alignment.taxon_count(), 3u);
  EXPECT_EQ(alignment.site_count(), 4u);
  EXPECT_EQ(alignment.taxon_name(1), "b");
  EXPECT_EQ(alignment.taxon_index("c"), 2u);
  EXPECT_THROW((void)alignment.taxon_index("zzz"), Error);
  EXPECT_EQ(alignment.at(0, 0), encode_dna('A'));
  EXPECT_EQ(alignment.at(1, 2), kGapCode);
}

TEST(Alignment, RejectsUnequalLengthsAndTooFewTaxa) {
  EXPECT_THROW(Alignment(io::SequenceSet{{"a", "ACGT"}, {"b", "AC"}, {"c", "ACGT"}}), Error);
  EXPECT_THROW(Alignment(io::SequenceSet{{"a", "ACGT"}, {"b", "ACGT"}}), Error);
}

TEST(Alignment, EmpiricalFrequenciesSumToOne) {
  io::SequenceSet records = {{"a", "AAAA"}, {"b", "CCCC"}, {"c", "GGTT"}};
  Alignment alignment(records);
  const auto freqs = alignment.empirical_base_frequencies();
  double sum = 0.0;
  for (const double f : freqs) {
    EXPECT_GT(f, 0.0);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // A and C each dominate 1/3 of the data.
  EXPECT_NEAR(freqs[0], freqs[1], 1e-12);
  EXPECT_GT(freqs[0], freqs[2]);
}

TEST(Alignment, RecordsRoundTrip) {
  io::SequenceSet records = {{"a", "ACGTRYN-"}, {"b", "TTTTTTTT"}, {"c", "ACGTACGT"}};
  Alignment alignment(records);
  const auto back = alignment.to_records();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].sequence, "ACGTRY--");  // 'N' and '-' both read back as the gap class
  EXPECT_EQ(back[1].name, "b");
}

TEST(Patterns, CompressesDuplicateColumns) {
  // Columns: (A,A,A) ×3, (C,C,C) ×2, (G,G,T) ×1.
  io::SequenceSet records = {{"a", "AACCAG"}, {"b", "AACCAG"}, {"c", "AACCAT"}};
  Alignment alignment(records);
  const auto patterns = compress_patterns(alignment);
  EXPECT_EQ(patterns.pattern_count(), 3u);
  EXPECT_EQ(patterns.total_sites(), 6u);
  // First-appearance order: AAA, CCC, G/G/T.
  EXPECT_EQ(patterns.weights[0], 3u);
  EXPECT_EQ(patterns.weights[1], 2u);
  EXPECT_EQ(patterns.weights[2], 1u);
  // site_to_pattern maps every original site back to its column.
  for (std::size_t site = 0; site < 6; ++site) {
    const auto p = patterns.site_to_pattern[site];
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_EQ(patterns.tip_rows[t][p], alignment.at(t, site));
    }
  }
}

TEST(Patterns, UncompressedKeepsEverySite) {
  Rng rng(5);
  const auto alignment = testutil::random_alignment(4, 50, rng);
  const auto patterns = uncompressed_patterns(alignment);
  EXPECT_EQ(patterns.pattern_count(), 50u);
  for (const auto w : patterns.weights) EXPECT_EQ(w, 1u);
}

TEST(Patterns, CompressionIsLossless) {
  Rng rng(17);
  const auto alignment = testutil::random_alignment(5, 300, rng, 0.1);
  const auto patterns = compress_patterns(alignment);
  EXPECT_EQ(patterns.total_sites(), alignment.site_count());
  for (std::size_t site = 0; site < alignment.site_count(); ++site) {
    const auto p = patterns.site_to_pattern[site];
    for (std::size_t t = 0; t < alignment.taxon_count(); ++t) {
      EXPECT_EQ(patterns.tip_rows[t][p], alignment.at(t, site));
    }
  }
}

TEST(Patterns, FewTaxaRandomDataCompressesHard) {
  // 3 taxa over 4 bases: at most 4³ = 64 possible columns (plus ambiguity).
  Rng rng(23);
  const auto alignment = testutil::random_alignment(3, 10000, rng);
  const auto patterns = compress_patterns(alignment);
  EXPECT_LE(patterns.pattern_count(), 64u);
  EXPECT_EQ(patterns.total_sites(), 10000u);
}

}  // namespace
}  // namespace miniphi::bio
