// Tests for the nonparametric bootstrap: resampling statistics, support
// computation, determinism, thread invariance, and annotated output.
#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/io/newick.hpp"
#include "src/search/bootstrap.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/parsimony.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::search {
namespace {

TEST(BootstrapResample, PreservesTotalSiteCount) {
  Rng rng(1);
  const auto alignment = testutil::random_alignment(6, 500, rng);
  const auto patterns = bio::compress_patterns(alignment);
  Rng sampler(7);
  for (int i = 0; i < 5; ++i) {
    const auto replicate = bootstrap_resample(patterns, sampler);
    EXPECT_EQ(replicate.total_sites(), patterns.total_sites());
    EXPECT_EQ(replicate.pattern_count(), patterns.pattern_count());
    EXPECT_EQ(replicate.tip_rows, patterns.tip_rows);  // data untouched
  }
}

TEST(BootstrapResample, WeightsFollowOriginalProportions) {
  // A pattern carrying half the sites should receive ~half of the draws.
  Rng rng(2);
  const auto alignment = testutil::random_alignment(4, 4000, rng);
  const auto patterns = bio::compress_patterns(alignment);
  Rng sampler(3);
  const auto replicate = bootstrap_resample(patterns, sampler);
  // Aggregate over many patterns: chi-square-ish sanity via max deviation.
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    const double expected = patterns.weights[p];
    if (expected < 30) continue;  // skip low-count bins
    EXPECT_NEAR(replicate.weights[p], expected, 5 * std::sqrt(expected) + 1)
        << "pattern " << p;
  }
}

class BootstrapFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Strong-signal data: long alignment on a well-separated tree.
    Rng rng(11);
    truth_ = std::make_unique<tree::Tree>(simulate::yule_tree(8, rng, 0.8));
    model::GtrParams params;
    params.alpha = 1.0;
    model_ = std::make_unique<model::GtrModel>(params);
    simulate::SimulationOptions sim;
    sim.sites = 3000;
    alignment_ = std::make_unique<bio::Alignment>(
        simulate::simulate_alignment(*truth_, *model_, sim, rng).alignment);
    patterns_ = std::make_unique<bio::PatternSet>(bio::compress_patterns(*alignment_));
  }

  std::unique_ptr<tree::Tree> truth_;
  std::unique_ptr<model::GtrModel> model_;
  std::unique_ptr<bio::Alignment> alignment_;
  std::unique_ptr<bio::PatternSet> patterns_;
};

TEST_F(BootstrapFixture, StrongSignalYieldsHighSupport) {
  BootstrapOptions options;
  options.replicates = 20;
  const auto result =
      run_bootstrap(*patterns_, *model_, *truth_, alignment_->taxon_names(), options);
  EXPECT_EQ(result.replicates, 20);
  EXPECT_EQ(result.support.size(), static_cast<std::size_t>(truth_->taxon_count() - 3));
  double mean = 0.0;
  for (const auto& [split, value] : result.support) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    mean += value;
  }
  mean /= static_cast<double>(result.support.size());
  EXPECT_GT(mean, 0.8) << "3 kb of clean simulated signal should support the true tree";
}

TEST_F(BootstrapFixture, DeterministicAndThreadInvariant) {
  BootstrapOptions options;
  options.replicates = 8;
  options.seed = 99;
  const auto serial =
      run_bootstrap(*patterns_, *model_, *truth_, alignment_->taxon_names(), options);
  options.threads = 3;
  const auto threaded =
      run_bootstrap(*patterns_, *model_, *truth_, alignment_->taxon_names(), options);
  EXPECT_EQ(serial.annotated_newick, threaded.annotated_newick);
  EXPECT_EQ(serial.support, threaded.support);
}

TEST_F(BootstrapFixture, AnnotatedNewickParsesAndCarriesLabels) {
  BootstrapOptions options;
  options.replicates = 6;
  const auto result =
      run_bootstrap(*patterns_, *model_, *truth_, alignment_->taxon_names(), options);
  // The annotated tree must be valid Newick with the right leaf set; inner
  // labels (support percentages) are parsed as inner-node names.
  const auto ast = io::parse_newick(result.annotated_newick);
  EXPECT_EQ(ast->leaf_count(), static_cast<std::size_t>(truth_->taxon_count()));
  // At least one inner label present (all splits get labels).
  EXPECT_NE(result.annotated_newick.find(')'), std::string::npos);
  bool found_label = false;
  const std::function<void(const io::NewickNode&)> scan = [&](const io::NewickNode& node) {
    if (!node.is_leaf() && !node.name.empty()) found_label = true;
    for (const auto& child : node.children) scan(*child);
  };
  scan(*ast);
  EXPECT_TRUE(found_label);
}

TEST(Bootstrap, RejectsBadOptions) {
  Rng rng(5);
  const auto alignment = testutil::random_alignment(5, 100, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(model::GtrParams::jc69());
  tree::Tree tree = tree::Tree::random(5, rng);
  BootstrapOptions options;
  options.replicates = 0;
  EXPECT_THROW(run_bootstrap(patterns, model, tree, testutil::taxon_names(5), options), Error);
}

}  // namespace
}  // namespace miniphi::search
