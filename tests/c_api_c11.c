/* Compile check + smoke driver for include/miniphi_c.h from actual C11.
 * This translation unit is compiled with a C compiler (CMAKE_C_STANDARD 11),
 * so any C++-ism leaking into the public header breaks the build here.
 * c_api_test.cpp calls miniphi_c11_smoke() to prove the C-side linkage. */
#include <string.h>

#include "miniphi_c.h"

int miniphi_c11_smoke(void) {
  int major = 0;
  int minor = -1;
  miniphi_version_numbers(&major, &minor);
  if (major != MINIPHI_C_API_VERSION_MAJOR) return 1;
  if (minor != MINIPHI_C_API_VERSION_MINOR) return 2;
  if (miniphi_version() == NULL) return 3;
  if (strlen(miniphi_version()) == 0) return 4;
  /* Scalar kernels are always compiled in. */
  if ((miniphi_supported_backends() & MINIPHI_BACKEND_SCALAR) == 0) return 5;

  /* A full round trip, entirely from C. */
  const char* fasta =
      ">a\nACGTACGTACGTACGTACGT\n"
      ">b\nACGTACGTTGCAACGTACGT\n"
      ">c\nACGAACGTACGTACGAACGT\n"
      ">d\nTCGTACGTACCTACGTACGA\n";
  miniphi_alignment* alignment = NULL;
  if (miniphi_alignment_from_fasta(fasta, &alignment) != MINIPHI_OK) return 6;
  miniphi_tree* tree = NULL;
  if (miniphi_tree_parsimony(alignment, 7, &tree) != MINIPHI_OK) {
    miniphi_alignment_destroy(alignment);
    return 7;
  }
  miniphi_instance* instance = NULL;
  miniphi_resource_grant grant;
  memset(&grant, 0, sizeof(grant));
  if (miniphi_create_instance(alignment, tree, NULL, &grant, &instance) != MINIPHI_OK) {
    miniphi_tree_destroy(tree);
    miniphi_alignment_destroy(alignment);
    return 8;
  }
  double lnl = 0.0;
  int rc = 0;
  if (miniphi_evaluate(instance, &lnl) != MINIPHI_OK) rc = 9;
  if (rc == 0 && !(lnl < 0.0)) rc = 10;
  if (rc == 0 && grant.partitions != 1) rc = 11;
  if (miniphi_finalize_instance(instance) != MINIPHI_OK && rc == 0) rc = 12;

  /* The multi-tenant service, entirely from C: create, register, run one
   * job, destroy.  Also proves the structs are C-initializable. */
  if (rc == 0) {
    miniphi_service* service = NULL;
    miniphi_service_options service_options;
    miniphi_job_options job;
    miniphi_job_result result;
    int64_t job_id = -1;
    memset(&service_options, 0, sizeof(service_options));
    memset(&job, 0, sizeof(job));
    memset(&result, 0, sizeof(result));
    if (miniphi_service_create(&service_options, &service) != MINIPHI_OK) rc = 13;
    if (rc == 0 && miniphi_service_register_tenant(service, "c11", 2) != MINIPHI_OK) rc = 14;
    if (rc == 0 &&
        miniphi_service_submit(service, "c11", alignment, tree, &job, &job_id) != MINIPHI_OK) {
      rc = 15;
    }
    if (rc == 0 && miniphi_service_wait(service, job_id, &result) != MINIPHI_OK) rc = 16;
    if (rc == 0 && result.status != MINIPHI_OK) rc = 17;
    if (rc == 0 && !(result.log_likelihood < 0.0)) rc = 18;
    if (service != NULL && miniphi_service_destroy(service) != MINIPHI_OK && rc == 0) rc = 19;
  }

  miniphi_tree_destroy(tree);
  miniphi_alignment_destroy(alignment);
  return rc;
}
