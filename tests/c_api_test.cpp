// Round-trip and error-path tests for the versioned C shim
// (include/miniphi_c.h).  Runs under ASan/TSan via
// scripts/run_sanitized_tests.sh, which is the leak/race check the C
// boundary needs: every handle allocated here is freed through the API.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "miniphi_c.h"

extern "C" int miniphi_c11_smoke(void);  // tests/c_api_c11.c — real C11 TU

namespace {

const char* kFasta =
    ">human\nAAGCTTCACCGGCGCAGTCATTCTCATAATCGCCCACGGACTTACATCCTCATTACTATT\n"
    ">chimp\nAAGCTTCACCGGCGCAATTATCCTCATAATCGCCCACGGACTTACATCATCATTATTATT\n"
    ">gorilla\nAAGCTTCACCGGCGCAGTTGTTCTTATAATTGCCCACGGACTTACATCATCATTATTATT\n"
    ">orangutan\nAAGCTTCACCGGCGCAACCACCCTCATGATTGCCCATGGACTCACATCCTCCCTACTGTT\n"
    ">gibbon\nAAGCTTTACAGGTGCAACCGTCCTCATAATCGCCCACGGACTAACCTCTTCCCTGCTATT\n";

struct Fixture {
  miniphi_alignment* alignment = nullptr;
  miniphi_tree* tree = nullptr;

  Fixture() {
    EXPECT_EQ(miniphi_alignment_from_fasta(kFasta, &alignment), MINIPHI_OK);
    EXPECT_EQ(miniphi_tree_parsimony(alignment, 42, &tree), MINIPHI_OK);
  }
  ~Fixture() {
    miniphi_tree_destroy(tree);
    miniphi_alignment_destroy(alignment);
  }
};

TEST(CApi, VersionAndBackends) {
  int major = 0;
  int minor = -1;
  miniphi_version_numbers(&major, &minor);
  EXPECT_EQ(major, MINIPHI_C_API_VERSION_MAJOR);
  EXPECT_EQ(minor, MINIPHI_C_API_VERSION_MINOR);
  EXPECT_NE(miniphi_version(), nullptr);
  EXPECT_NE(miniphi_supported_backends() & MINIPHI_BACKEND_SCALAR, 0);
  // Tolerates null out-pointers.
  miniphi_version_numbers(nullptr, nullptr);
}

TEST(CApi, C11TranslationUnitRoundTrips) { EXPECT_EQ(miniphi_c11_smoke(), 0); }

TEST(CApi, RoundTripCreateEvaluateOptimizeDestroy) {
  Fixture f;
  int taxa = 0;
  int64_t sites = 0;
  EXPECT_EQ(miniphi_alignment_taxon_count(f.alignment, &taxa), MINIPHI_OK);
  EXPECT_EQ(miniphi_alignment_site_count(f.alignment, &sites), MINIPHI_OK);
  EXPECT_EQ(taxa, 5);
  EXPECT_EQ(sites, 60);

  miniphi_resource_grant grant{};
  miniphi_instance* instance = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, nullptr, &grant, &instance),
            MINIPHI_OK);
  EXPECT_EQ(grant.partitions, 1);
  EXPECT_EQ(grant.streams, 1);
  EXPECT_NE(grant.backends & miniphi_supported_backends(), 0);

  double initial = 0.0;
  ASSERT_EQ(miniphi_evaluate(instance, &initial), MINIPHI_OK);
  EXPECT_LT(initial, 0.0);
  double optimized = 0.0;
  ASSERT_EQ(miniphi_optimize_branch_lengths(instance, 4, &optimized), MINIPHI_OK);
  EXPECT_GE(optimized, initial);
  EXPECT_EQ(miniphi_set_alpha(instance, 0.7), MINIPHI_OK);
  double after_alpha = 0.0;
  ASSERT_EQ(miniphi_evaluate(instance, &after_alpha), MINIPHI_OK);
  EXPECT_NE(after_alpha, optimized);

  // Newick export: query size first, then fetch.
  int64_t required = 0;
  ASSERT_EQ(miniphi_instance_to_newick(instance, nullptr, 0, &required), MINIPHI_OK);
  ASSERT_GT(required, 0);
  std::vector<char> buffer(static_cast<std::size_t>(required) + 1);
  ASSERT_EQ(miniphi_instance_to_newick(instance, buffer.data(),
                                       static_cast<int64_t>(buffer.size()), nullptr),
            MINIPHI_OK);
  EXPECT_NE(std::strstr(buffer.data(), "human"), nullptr);

  EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
}

TEST(CApi, NegotiationGrantsPartitionsAndStreams) {
  Fixture f;
  miniphi_resource_request request{};
  request.partitions = 4;
  request.streams = 2;
  miniphi_resource_grant grant{};
  miniphi_instance* instance = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, &request, &grant, &instance),
            MINIPHI_OK);
  EXPECT_EQ(grant.partitions, 4);
  EXPECT_EQ(grant.streams, 2);
  EXPECT_NE(grant.backends, 0);
  // Granted back-ends never exceed what the host supports.
  EXPECT_EQ(grant.backends & ~miniphi_supported_backends(), 0);
  double lnl = 0.0;
  ASSERT_EQ(miniphi_evaluate(instance, &lnl), MINIPHI_OK);
  EXPECT_LT(lnl, 0.0);
  EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
}

TEST(CApi, ClaBudgetNegotiationGrantsWithinRequest) {
  Fixture f;
  double unlimited = 0.0;
  {
    miniphi_instance* instance = nullptr;
    ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, nullptr, nullptr, &instance),
              MINIPHI_OK);
    ASSERT_EQ(miniphi_evaluate(instance, &unlimited), MINIPHI_OK);
    EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
  }
  miniphi_resource_request request{};
  request.cla_budget_bytes = INT64_C(1) << 20;
  miniphi_resource_grant grant{};
  miniphi_instance* instance = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, &request, &grant, &instance),
            MINIPHI_OK);
  EXPECT_EQ(grant.cla_bytes_requested, request.cla_budget_bytes);
  EXPECT_GT(grant.cla_bytes_granted, 0);
  EXPECT_LE(grant.cla_bytes_granted, grant.cla_bytes_requested);
  // Budgeted evaluation is bit-identical to the unlimited run.
  double lnl = 0.0;
  ASSERT_EQ(miniphi_evaluate(instance, &lnl), MINIPHI_OK);
  EXPECT_EQ(lnl, unlimited);
  EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
}

TEST(CApi, ClaBudgetBelowWorkingSetIsInsufficientMemory) {
  Fixture f;
  miniphi_resource_request request{};
  request.cla_budget_bytes = 100;  // cannot hold even one CLA buffer
  miniphi_resource_grant grant{};
  miniphi_instance* instance = nullptr;
  EXPECT_EQ(miniphi_create_instance(f.alignment, f.tree, &request, &grant, &instance),
            MINIPHI_ERROR_INSUFFICIENT_MEMORY);
  EXPECT_EQ(instance, nullptr);
  EXPECT_NE(std::strstr(miniphi_last_error_message(), "minimum working set"), nullptr);
}

TEST(CApi, PartitionedInstanceMatchesSinglePartitionLikelihood) {
  Fixture f;
  double single = 0.0;
  {
    miniphi_instance* instance = nullptr;
    ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, nullptr, nullptr, &instance),
              MINIPHI_OK);
    ASSERT_EQ(miniphi_evaluate(instance, &single), MINIPHI_OK);
    EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
  }
  // Forcing the scalar back-end on both sides makes the comparison exact up
  // to partition-boundary pattern compression (same kernels, fixed-order
  // sums over different pattern groupings) — likelihoods agree to relative
  // tolerance.
  miniphi_resource_request request{};
  request.backends = MINIPHI_BACKEND_SCALAR;
  request.partitions = 3;
  request.streams = 3;
  miniphi_instance* instance = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, &request, nullptr, &instance),
            MINIPHI_OK);
  double partitioned = 0.0;
  ASSERT_EQ(miniphi_evaluate(instance, &partitioned), MINIPHI_OK);
  EXPECT_NEAR(partitioned, single, 1e-9 * std::abs(single));
  EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
}

TEST(CApi, ErrorPathsReturnStableCodesAndNeverThrow) {
  // Null arguments.
  EXPECT_EQ(miniphi_alignment_from_fasta(nullptr, nullptr), MINIPHI_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(miniphi_evaluate(nullptr, nullptr), MINIPHI_ERROR_INVALID_ARGUMENT);

  // Malformed FASTA → PARSE, with a nonempty thread-local message.
  miniphi_alignment* alignment = nullptr;
  EXPECT_EQ(miniphi_alignment_from_fasta("not fasta at all", &alignment),
            MINIPHI_ERROR_PARSE);
  EXPECT_EQ(alignment, nullptr);
  EXPECT_NE(std::strlen(miniphi_last_error_message()), 0u);

  Fixture f;
  // Malformed Newick → PARSE.
  miniphi_tree* tree = nullptr;
  EXPECT_EQ(miniphi_tree_from_newick(f.alignment, "((human,chimp", &tree),
            MINIPHI_ERROR_PARSE);
  EXPECT_EQ(tree, nullptr);

  // A back-end mask with no supportable bit → UNSUPPORTED.
  miniphi_resource_request request{};
  request.backends = 1 << 10;
  miniphi_instance* instance = nullptr;
  EXPECT_EQ(miniphi_create_instance(f.alignment, f.tree, &request, nullptr, &instance),
            MINIPHI_ERROR_UNSUPPORTED);
  EXPECT_EQ(instance, nullptr);

  // Bad arguments on live instances.
  miniphi_instance* live = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, nullptr, nullptr, &live), MINIPHI_OK);
  double lnl = 0.0;
  EXPECT_EQ(miniphi_optimize_branch_lengths(live, 0, &lnl), MINIPHI_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(miniphi_set_alpha(live, -1.0), MINIPHI_ERROR_INVALID_ARGUMENT);
  // A failing call leaves the instance usable.
  EXPECT_EQ(miniphi_evaluate(live, &lnl), MINIPHI_OK);
  EXPECT_EQ(miniphi_finalize_instance(live), MINIPHI_OK);

  // Destroy functions are NULL-safe.
  miniphi_alignment_destroy(nullptr);
  miniphi_tree_destroy(nullptr);
  EXPECT_EQ(miniphi_finalize_instance(nullptr), MINIPHI_OK);
}

TEST(CApi, StaleHandlesAreDetectedNotUndefined) {
  Fixture f;

  // Double-finalize: the generation-stamped table catches the stale handle
  // instead of dereferencing freed memory.
  miniphi_instance* instance = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, nullptr, nullptr, &instance),
            MINIPHI_OK);
  EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_OK);
  EXPECT_EQ(miniphi_finalize_instance(instance), MINIPHI_ERROR_INVALID_HANDLE);
  EXPECT_NE(std::strlen(miniphi_last_error_message()), 0u);

  // Use-after-finalize is a stable error, not UB.
  double lnl = 0.0;
  EXPECT_EQ(miniphi_evaluate(instance, &lnl), MINIPHI_ERROR_INVALID_HANDLE);

  // Stale alignment/tree handles after destroy: accessors and consumers
  // both report INVALID_HANDLE.
  miniphi_alignment* alignment = nullptr;
  ASSERT_EQ(miniphi_alignment_from_fasta(kFasta, &alignment), MINIPHI_OK);
  miniphi_tree* tree = nullptr;
  ASSERT_EQ(miniphi_tree_parsimony(alignment, 3, &tree), MINIPHI_OK);
  miniphi_tree_destroy(tree);
  int64_t required = 0;
  EXPECT_EQ(miniphi_tree_to_newick(tree, nullptr, 0, &required),
            MINIPHI_ERROR_INVALID_HANDLE);
  miniphi_alignment_destroy(alignment);
  miniphi_tree* reparse = nullptr;
  EXPECT_EQ(miniphi_tree_parsimony(alignment, 3, &reparse), MINIPHI_ERROR_INVALID_HANDLE);
  EXPECT_EQ(reparse, nullptr);

  // Double-destroy through the void destroyers is a safe no-op.
  miniphi_tree_destroy(tree);
  miniphi_alignment_destroy(alignment);

  // Null stays INVALID_ARGUMENT — a different caller bug than staleness.
  EXPECT_EQ(miniphi_evaluate(nullptr, &lnl), MINIPHI_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(miniphi_finalize_instance(nullptr), MINIPHI_OK);
}

TEST(CApi, ServiceRoundTripAndErrors) {
  Fixture f;
  miniphi_service_options options{};
  options.executors = 2;
  miniphi_service* service = nullptr;
  ASSERT_EQ(miniphi_service_create(&options, &service), MINIPHI_OK);
  ASSERT_NE(service, nullptr);

  EXPECT_EQ(miniphi_service_register_tenant(service, "acme", 4), MINIPHI_OK);
  // Tenant names become metric components: dots and duplicates are caller
  // bugs, not load conditions.
  EXPECT_EQ(miniphi_service_register_tenant(service, "dotted.name", 4),
            MINIPHI_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(miniphi_service_register_tenant(service, "acme", 4),
            MINIPHI_ERROR_INVALID_ARGUMENT);

  // Two identical jobs complete with the same likelihood.
  miniphi_job_options job{};
  job.kind = MINIPHI_JOB_EVALUATE;
  int64_t id_a = -1;
  int64_t id_b = -1;
  ASSERT_EQ(miniphi_service_submit(service, "acme", f.alignment, f.tree, &job, &id_a),
            MINIPHI_OK);
  ASSERT_EQ(miniphi_service_submit(service, "acme", f.alignment, f.tree, &job, &id_b),
            MINIPHI_OK);
  EXPECT_EQ(miniphi_service_submit(service, "ghost", f.alignment, f.tree, &job, &id_b),
            MINIPHI_ERROR_INVALID_ARGUMENT);

  miniphi_job_result result_a{};
  miniphi_job_result result_b{};
  ASSERT_EQ(miniphi_service_wait(service, id_a, &result_a), MINIPHI_OK);
  ASSERT_EQ(miniphi_service_wait(service, id_b, &result_b), MINIPHI_OK);
  EXPECT_EQ(result_a.status, MINIPHI_OK) << miniphi_last_error_message();
  EXPECT_EQ(result_b.status, MINIPHI_OK) << miniphi_last_error_message();
  EXPECT_LT(result_a.log_likelihood, 0.0);
  EXPECT_EQ(result_a.log_likelihood, result_b.log_likelihood);

  // Cancelling a terminal job reports "nothing to do", and unknown job ids
  // are caller bugs.
  int requested = -1;
  EXPECT_EQ(miniphi_service_cancel(service, id_a, &requested), MINIPHI_OK);
  EXPECT_EQ(requested, 0);
  miniphi_job_result unknown{};
  EXPECT_EQ(miniphi_service_wait(service, 987654, &unknown),
            MINIPHI_ERROR_INVALID_ARGUMENT);

  EXPECT_EQ(miniphi_service_destroy(service), MINIPHI_OK);
  EXPECT_EQ(miniphi_service_destroy(service), MINIPHI_ERROR_INVALID_HANDLE);
  EXPECT_EQ(miniphi_service_destroy(nullptr), MINIPHI_OK);
}

TEST(CApi, ServiceJobDeadlineSurfacesStructuredStatus) {
  Fixture f;
  miniphi_service* service = nullptr;
  ASSERT_EQ(miniphi_service_create(nullptr, &service), MINIPHI_OK);
  ASSERT_EQ(miniphi_service_register_tenant(service, "acme", 2), MINIPHI_OK);

  miniphi_job_options job{};
  job.kind = MINIPHI_JOB_BRANCH_SMOOTH;
  job.smoothing_passes = 4;
  job.deadline_ns = 1;  // expires before the job can even dispatch
  int64_t id = -1;
  ASSERT_EQ(miniphi_service_submit(service, "acme", f.alignment, f.tree, &job, &id),
            MINIPHI_OK);
  miniphi_job_result result{};
  ASSERT_EQ(miniphi_service_wait(service, id, &result), MINIPHI_OK);
  EXPECT_EQ(result.status, MINIPHI_ERROR_DEADLINE_EXCEEDED);
  EXPECT_NE(std::strlen(miniphi_last_error_message()), 0u);

  // The expiry was contained to that job: the service still works.
  miniphi_job_options healthy{};
  ASSERT_EQ(miniphi_service_submit(service, "acme", f.alignment, f.tree, &healthy, &id),
            MINIPHI_OK);
  miniphi_job_result ok{};
  ASSERT_EQ(miniphi_service_wait(service, id, &ok), MINIPHI_OK);
  EXPECT_EQ(ok.status, MINIPHI_OK) << miniphi_last_error_message();
  EXPECT_LT(ok.log_likelihood, 0.0);
  EXPECT_EQ(miniphi_service_destroy(service), MINIPHI_OK);
}

TEST(CApi, NewickRoundTripThroughTreeHandle) {
  Fixture f;
  int64_t required = 0;
  ASSERT_EQ(miniphi_tree_to_newick(f.tree, nullptr, 0, &required), MINIPHI_OK);
  std::vector<char> buffer(static_cast<std::size_t>(required) + 1);
  ASSERT_EQ(miniphi_tree_to_newick(f.tree, buffer.data(),
                                   static_cast<int64_t>(buffer.size()), nullptr),
            MINIPHI_OK);
  miniphi_tree* reparsed = nullptr;
  ASSERT_EQ(miniphi_tree_from_newick(f.alignment, buffer.data(), &reparsed), MINIPHI_OK);
  // The reparsed tree yields the same likelihood.
  miniphi_instance* a = nullptr;
  miniphi_instance* b = nullptr;
  ASSERT_EQ(miniphi_create_instance(f.alignment, f.tree, nullptr, nullptr, &a), MINIPHI_OK);
  ASSERT_EQ(miniphi_create_instance(f.alignment, reparsed, nullptr, nullptr, &b), MINIPHI_OK);
  double lnl_a = 0.0;
  double lnl_b = 0.0;
  ASSERT_EQ(miniphi_evaluate(a, &lnl_a), MINIPHI_OK);
  ASSERT_EQ(miniphi_evaluate(b, &lnl_b), MINIPHI_OK);
  EXPECT_DOUBLE_EQ(lnl_a, lnl_b);
  EXPECT_EQ(miniphi_finalize_instance(a), MINIPHI_OK);
  EXPECT_EQ(miniphi_finalize_instance(b), MINIPHI_OK);
  miniphi_tree_destroy(reparsed);
}

}  // namespace
