// Tests for the CAT rate-heterogeneity engine (per-site rates), including
// the two-sites-per-512-bit-vector alignment path of paper Section V-B2.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/cat/cat_engine.hpp"
#include "src/search/spr_search.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/parsimony.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

/// Independent reference: Felsenstein pruning with an explicit per-site rate
/// multiplier, in probability space.
double cat_brute_force(const tree::Tree& tree, const bio::PatternSet& patterns,
                       const model::GtrModel& model, const std::vector<double>& rates,
                       const std::vector<std::uint8_t>& assignment) {
  const std::size_t npat = patterns.pattern_count();
  using Cond = std::vector<std::array<double, 4>>;

  const std::function<Cond(const tree::Slot*)> down = [&](const tree::Slot* slot) -> Cond {
    Cond out(npat);
    if (slot->is_tip()) {
      const auto& codes = patterns.tip_rows[static_cast<std::size_t>(slot->node_id)];
      for (std::size_t s = 0; s < npat; ++s) {
        for (int i = 0; i < 4; ++i) {
          out[s][static_cast<std::size_t>(i)] = (codes[s] & (1 << i)) ? 1.0 : 0.0;
        }
      }
      return out;
    }
    const Cond left = down(slot->child1());
    const Cond right = down(slot->child2());
    for (std::size_t s = 0; s < npat; ++s) {
      const double rate = rates[assignment[s]];
      const auto p1 = model.transition_matrix(slot->next->length, rate);
      const auto p2 = model.transition_matrix(slot->next->next->length, rate);
      for (int i = 0; i < 4; ++i) {
        double a = 0.0;
        double b = 0.0;
        for (int j = 0; j < 4; ++j) {
          a += p1[static_cast<std::size_t>(i * 4 + j)] * left[s][static_cast<std::size_t>(j)];
          b += p2[static_cast<std::size_t>(i * 4 + j)] * right[s][static_cast<std::size_t>(j)];
        }
        out[s][static_cast<std::size_t>(i)] = a * b;
      }
    }
    return out;
  };

  const tree::Slot* root = tree.tip(0);
  const Cond below = down(root->back);
  const auto& codes = patterns.tip_rows[0];
  const auto& pi = model.frequencies();
  double total = 0.0;
  for (std::size_t s = 0; s < npat; ++s) {
    const double rate = rates[assignment[s]];
    const auto p = model.transition_matrix(root->length, rate);
    double site = 0.0;
    for (int i = 0; i < 4; ++i) {
      if (!(codes[s] & (1 << i))) continue;
      double inner = 0.0;
      for (int j = 0; j < 4; ++j) {
        inner += p[static_cast<std::size_t>(i * 4 + j)] * below[s][static_cast<std::size_t>(j)];
      }
      site += pi[static_cast<std::size_t>(i)] * inner;
    }
    total += patterns.weights[s] * std::log(site);
  }
  return total;
}

struct CatInstance {
  bio::PatternSet patterns;
  model::GtrModel model = model::GtrModel(model::GtrParams::jc69());
  std::unique_ptr<tree::Tree> tree;
  std::vector<double> rates;
  std::vector<std::uint8_t> assignment;
};

CatInstance make_instance(int ntaxa, int nsites, int categories, std::uint64_t seed) {
  Rng rng(seed);
  CatInstance instance;
  const auto alignment = testutil::random_alignment(ntaxa, nsites, rng, 0.05);
  instance.patterns = bio::compress_patterns(alignment);
  instance.model = model::GtrModel(testutil::random_gtr_params(rng));
  instance.tree = std::make_unique<tree::Tree>(tree::Tree::random(ntaxa, rng));
  for (int c = 0; c < categories; ++c) {
    instance.rates.push_back(rng.uniform(0.05, 4.0));
  }
  instance.assignment.resize(instance.patterns.pattern_count());
  for (auto& a : instance.assignment) {
    a = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(categories)));
  }
  return instance;
}

class CatEngineTest : public ::testing::TestWithParam<simd::Isa> {
 protected:
  void SetUp() override {
    if (!simd::isa_supported(GetParam())) GTEST_SKIP() << "ISA unsupported";
  }
};

TEST_P(CatEngineTest, MatchesBruteForceWithRandomCategories) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto instance = make_instance(9, 151, 7, seed);  // odd pattern count: pair-path tails
    CatEngine::Config config;
    config.isa = GetParam();
    CatEngine engine(instance.patterns, instance.model, *instance.tree, 7, config);
    engine.set_categories(instance.rates, instance.assignment);
    const double expected = cat_brute_force(*instance.tree, instance.patterns, instance.model,
                                            instance.rates, instance.assignment);
    const double actual = engine.log_likelihood(instance.tree->tip(0));
    EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-10 + 1e-8) << "seed " << seed;
  }
}

TEST_P(CatEngineTest, VirtualRootInvariance) {
  auto instance = make_instance(10, 120, 5, 11);
  CatEngine::Config config;
  config.isa = GetParam();
  CatEngine engine(instance.patterns, instance.model, *instance.tree, 5, config);
  engine.set_categories(instance.rates, instance.assignment);
  const double reference = engine.log_likelihood(instance.tree->tip(0));
  for (tree::Slot* edge : instance.tree->edges()) {
    EXPECT_NEAR(engine.log_likelihood(edge), reference, std::abs(reference) * 1e-11 + 1e-9);
  }
}

TEST_P(CatEngineTest, DerivativesMatchFiniteDifferences) {
  auto instance = make_instance(8, 90, 4, 13);
  CatEngine::Config config;
  config.isa = GetParam();
  CatEngine engine(instance.patterns, instance.model, *instance.tree, 4, config);
  engine.set_categories(instance.rates, instance.assignment);

  tree::Slot* edge = instance.tree->tip(3);
  engine.prepare_derivatives(edge);
  const double z = edge->length;
  const auto [first, second] = engine.derivatives(z);
  const auto eval_at = [&](double value) {
    tree::Tree::set_length(edge, value);
    const double result = engine.log_likelihood(edge);
    tree::Tree::set_length(edge, z);
    return result;
  };
  const double h = 1e-6;
  EXPECT_NEAR(first, (eval_at(z + h) - eval_at(z - h)) / (2 * h),
              1e-3 * (1.0 + std::abs(first)));
  const double h2 = 1e-4;
  EXPECT_NEAR(second, (eval_at(z + h2) - 2 * eval_at(z) + eval_at(z - h2)) / (h2 * h2),
              2e-2 * (1.0 + std::abs(second)));
}

TEST_P(CatEngineTest, AgreesAcrossBackEnds) {
  // Direct cross-ISA agreement incl. the odd-start/odd-end pair handling.
  auto instance = make_instance(12, 257, 9, 17);
  CatEngine::Config scalar_config;
  scalar_config.isa = simd::Isa::kScalar;
  CatEngine scalar_engine(instance.patterns, instance.model, *instance.tree, 9, scalar_config);
  scalar_engine.set_categories(instance.rates, instance.assignment);
  const double expected = scalar_engine.log_likelihood(instance.tree->tip(0));

  CatEngine::Config config;
  config.isa = GetParam();
  CatEngine engine(instance.patterns, instance.model, *instance.tree, 9, config);
  engine.set_categories(instance.rates, instance.assignment);
  EXPECT_NEAR(engine.log_likelihood(instance.tree->tip(0)), expected,
              std::abs(expected) * 1e-11 + 1e-9);

  // Branch optimization should follow the same trajectory.
  tree::Tree tree_a(*instance.tree);
  tree::Tree tree_b(*instance.tree);
  CatEngine engine_a(instance.patterns, instance.model, tree_a, 9, scalar_config);
  engine_a.set_categories(instance.rates, instance.assignment);
  CatEngine engine_b(instance.patterns, instance.model, tree_b, 9, config);
  engine_b.set_categories(instance.rates, instance.assignment);
  const double lnl_a = engine_a.optimize_all_branches(tree_a.tip(0), 2);
  const double lnl_b = engine_b.optimize_all_branches(tree_b.tip(0), 2);
  EXPECT_NEAR(lnl_a, lnl_b, std::abs(lnl_a) * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Isas, CatEngineTest,
                         ::testing::Values(simd::Isa::kScalar, simd::Isa::kAvx2,
                                           simd::Isa::kAvx512),
                         [](const auto& param_info) { return simd::to_string(param_info.param); });

TEST(CatEngine, SetAlphaThrows) {
  auto instance = make_instance(5, 30, 4, 23);
  CatEngine engine(instance.patterns, instance.model, *instance.tree, 4);
  EXPECT_THROW(engine.set_alpha(1.0), Error);
  EXPECT_THROW((void)engine.alpha(), Error);
}

TEST(CatEngine, RejectsBadCategories) {
  auto instance = make_instance(5, 30, 4, 29);
  CatEngine engine(instance.patterns, instance.model, *instance.tree, 4);
  EXPECT_THROW(engine.set_categories({}, {}), Error);
  EXPECT_THROW(engine.set_categories({1.0, -0.5},
                                     std::vector<std::uint8_t>(
                                         instance.patterns.pattern_count(), 0)),
               Error);
  EXPECT_THROW(engine.set_categories({1.0},
                                     std::vector<std::uint8_t>(
                                         instance.patterns.pattern_count(), 3)),
               Error);
}

TEST(CatEngine, SiteRateOptimizationFitsHeterogeneousData) {
  // Simulate strongly rate-heterogeneous data (Γ, α = 0.3) and check that
  // CAT per-site rate optimization (a) improves the likelihood markedly
  // over the rate-homogeneous start and (b) spreads the category rates.
  Rng rng(31);
  tree::Tree truth = simulate::yule_tree(10, rng, 0.8);
  model::GtrParams params;
  params.alpha = 0.3;
  const model::GtrModel gen_model(params);
  simulate::SimulationOptions sim;
  sim.sites = 3000;
  const auto alignment = simulate::simulate_alignment(truth, gen_model, sim, rng).alignment;
  const auto patterns = bio::compress_patterns(alignment);

  tree::Tree tree(truth);
  CatEngine engine(patterns, model::GtrModel(model::GtrParams::jc69()), tree, 8);
  // Homogeneous start: one effective rate.
  engine.set_categories({1.0}, std::vector<std::uint8_t>(patterns.pattern_count(), 0));
  double homogeneous = engine.optimize_all_branches(tree.tip(0), 4);

  // Re-arm with 8 categories and optimize per-site rates.
  CatEngine cat(patterns, model::GtrModel(model::GtrParams::jc69()), tree, 8);
  (void)cat.optimize_all_branches(tree.tip(0), 4);
  (void)cat.optimize_site_rates(tree.tip(0), 3);
  const double optimized = cat.optimize_all_branches(tree.tip(0), 4);
  EXPECT_GT(optimized, homogeneous + 50.0)
      << "per-site rates must fit alpha=0.3 data far better than a single rate";

  const auto& rates = cat.category_rates();
  const auto [min_it, max_it] = std::minmax_element(rates.begin(), rates.end());
  EXPECT_LT(*min_it, 0.5);
  EXPECT_GT(*max_it, 1.5);

  // Unit weighted mean rate after renormalization.
  double mean = 0.0;
  double total_weight = 0.0;
  for (std::size_t s = 0; s < patterns.pattern_count(); ++s) {
    mean += patterns.weights[s] * rates[cat.site_categories()[s]];
    total_weight += patterns.weights[s];
  }
  EXPECT_NEAR(mean / total_weight, 1.0, 1e-9);
}

TEST(CatEngine, SearchRunsUnderCat) {
  Rng rng(37);
  tree::Tree truth = simulate::yule_tree(8, rng, 0.7);
  model::GtrParams params;  // moderate heterogeneity (alpha = 1)
  const auto alignment =
      simulate::simulate_alignment(truth, model::GtrModel(params), {3000, false}, rng).alignment;
  const auto patterns = bio::compress_patterns(alignment);

  // Start from a parsimony tree, as the real RAxML-CAT pipeline does.
  tree::Tree tree = tree::parsimony_starting_tree(patterns, rng);
  CatEngine engine(patterns, model::GtrModel(model::GtrParams::jc69()), tree, 6);
  (void)engine.optimize_site_rates(tree.tip(0), 2);

  search::SearchOptions options;
  options.optimize_model = false;  // CAT: no alpha to optimize
  // Standard CAT practice (as in RAxML): alternate topology search with
  // per-site rate re-estimation, since rates fitted on a poor starting
  // topology cap the achievable likelihood.
  search::SearchResult result;
  for (int round = 0; round < 3; ++round) {
    result = search::run_tree_search(engine, tree, options);
    (void)engine.optimize_site_rates(tree.tip(0), 2);
  }
  result.log_likelihood = engine.optimize_all_branches(tree.tip(0), 4);
  EXPECT_LT(result.log_likelihood, 0.0);

  // The searched topology must at least match the likelihood of the truth
  // under the same CAT pipeline (and usually equals the truth).
  tree::Tree reference(truth);
  CatEngine reference_engine(patterns, model::GtrModel(model::GtrParams::jc69()), reference, 6);
  (void)reference_engine.optimize_site_rates(reference.tip(0), 2);
  const double reference_lnl = reference_engine.optimize_all_branches(reference.tip(0), 6);
  // Tolerance covers CAT rate-discretization differences between the two
  // independently fitted category sets.
  EXPECT_GE(result.log_likelihood, reference_lnl - 5.0);
  EXPECT_LE(tree::robinson_foulds(tree, truth), 4);
}

}  // namespace
}  // namespace miniphi::core
