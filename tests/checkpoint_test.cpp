// Tests for search checkpointing: serialization round trips, corruption
// detection, and — the property that matters — a search interrupted at a
// checkpoint and resumed from it reaches exactly the same result as an
// uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/core/engine.hpp"
#include "src/search/checkpoint.hpp"
#include "src/search/spr_search.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/parsimony.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::search {
namespace {

TEST(Checkpoint, StreamRoundTripPreservesEverything) {
  Rng rng(42);
  tree::Tree tree = simulate::yule_tree(9, rng, 0.6);
  const auto names = testutil::taxon_names(9);
  const auto params = testutil::random_gtr_params(rng);

  const auto checkpoint = make_checkpoint(tree, names, params, 7, -1234.5678, 99);
  std::stringstream stream;
  write_checkpoint(stream, checkpoint);
  const auto restored = read_checkpoint(stream);

  EXPECT_EQ(restored.taxon_names, names);
  EXPECT_EQ(restored.rounds_completed, 7);
  EXPECT_DOUBLE_EQ(restored.log_likelihood, -1234.5678);
  EXPECT_EQ(restored.seed, 99u);
  EXPECT_DOUBLE_EQ(restored.model_params.alpha, params.alpha);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(restored.model_params.exchangeabilities[i], params.exchangeabilities[i]);
  }

  tree::Tree rebuilt = restored.restore_tree();
  EXPECT_EQ(tree::robinson_foulds(tree, rebuilt), 0);
  // Branch lengths survive with 17-digit precision.
  const auto original_edges = const_cast<const tree::Tree&>(tree).edges();
  double total_original = 0.0;
  for (const auto* e : original_edges) total_original += e->length;
  double total_rebuilt = 0.0;
  for (const auto* e : const_cast<const tree::Tree&>(rebuilt).edges()) {
    total_rebuilt += e->length;
  }
  EXPECT_NEAR(total_original, total_rebuilt, 1e-12);
}

TEST(Checkpoint, FileRoundTripAndAtomicReplace) {
  Rng rng(7);
  tree::Tree tree = simulate::yule_tree(5, rng, 0.5);
  const auto names = testutil::taxon_names(5);
  const std::string path = "/tmp/miniphi_checkpoint_test.ckp";

  write_checkpoint_file(path, make_checkpoint(tree, names, model::GtrParams::jc69(), 1, -1, 5));
  write_checkpoint_file(path, make_checkpoint(tree, names, model::GtrParams::jc69(), 2, -2, 5));
  const auto restored = read_checkpoint_file(path);
  EXPECT_EQ(restored.rounds_completed, 2);
  std::remove(path.c_str());
  EXPECT_THROW(read_checkpoint_file(path), Error);
}

TEST(Checkpoint, RejectsCorruptedInput) {
  {
    std::stringstream stream("not-a-checkpoint 1\n");
    EXPECT_THROW(read_checkpoint(stream), Error);
  }
  {
    std::stringstream stream("miniphi-checkpoint 999\n");
    EXPECT_THROW(read_checkpoint(stream), Error);
  }
  {
    std::stringstream stream("miniphi-checkpoint 1\ntaxa 3\na\nb\n");  // truncated
    EXPECT_THROW(read_checkpoint(stream), Error);
  }
}

TEST(Checkpoint, ChecksumDetectsCorruption) {
  Rng rng(13);
  tree::Tree tree = simulate::yule_tree(6, rng, 0.4);
  const auto checkpoint =
      make_checkpoint(tree, testutil::taxon_names(6), model::GtrParams::jc69(), 3, -42.0, 1);
  std::ostringstream out;
  write_checkpoint(out, checkpoint);
  const std::string good = out.str();

  // Pristine content reads back fine.
  {
    std::istringstream in(good);
    EXPECT_EQ(read_checkpoint(in).rounds_completed, 3);
  }
  // A single flipped byte in the body fails the checksum.
  {
    std::string corrupted = good;
    const auto pos = corrupted.find("-42");
    ASSERT_NE(pos, std::string::npos);
    corrupted[pos + 1] = '9';
    std::istringstream in(corrupted);
    try {
      read_checkpoint(in);
      FAIL() << "corrupted checkpoint must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
    }
  }
  // A file truncated before the checksum line (interrupted write without the
  // atomic rename) is rejected as truncated, not parsed as a partial state.
  {
    const auto checksum_pos = good.rfind("checksum ");
    ASSERT_NE(checksum_pos, std::string::npos);
    std::istringstream in(good.substr(0, checksum_pos));
    try {
      read_checkpoint(in);
      FAIL() << "truncated checkpoint must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
    }
  }
  // A corrupted checksum value itself is also caught.
  {
    std::string bad_sum = good;
    const auto pos = bad_sum.rfind("checksum ");
    bad_sum[pos + 9] = bad_sum[pos + 9] == '1' ? '2' : '1';
    std::istringstream in(bad_sum);
    EXPECT_THROW(read_checkpoint(in), Error);
  }
}

TEST(Checkpoint, RejectsVersionOneFiles) {
  // Version 1 predates the checksum line; refusing it is deliberate — a
  // clear re-run beats silently trusting an unverifiable file.
  std::stringstream stream("miniphi-checkpoint 1\ntaxa 2\na\nb\n");
  try {
    read_checkpoint(stream);
    FAIL() << "version-1 checkpoints must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, SurfacesFormatVersion) {
  Rng rng(21);
  tree::Tree tree = simulate::yule_tree(4, rng, 0.5);
  std::stringstream stream;
  write_checkpoint(stream,
                   make_checkpoint(tree, testutil::taxon_names(4), model::GtrParams::jc69(), 1,
                                   -10.0, 2));
  EXPECT_EQ(read_checkpoint(stream).format_version, kCheckpointFormatVersion);
}

TEST(Checkpoint, RejectsNewerFormatVersions) {
  // A file from a future miniphi must be refused with a message that says to
  // upgrade, not misparsed under today's record layout.
  std::stringstream stream("miniphi-checkpoint 99\ntaxa 2\na\nb\n");
  try {
    read_checkpoint(stream);
    FAIL() << "future-version checkpoints must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, EveryTruncationPointIsRejected) {
  // The property the checksum exists for: NO prefix of a valid checkpoint is
  // itself a valid checkpoint.  A crash (or filesystem) can cut the file at
  // any byte; every cut must surface as a clear Error, never as garbage
  // state or a partially-restored search.
  Rng rng(17);
  tree::Tree tree = simulate::yule_tree(7, rng, 0.5);
  std::ostringstream out;
  write_checkpoint(out, make_checkpoint(tree, testutil::taxon_names(7),
                                        model::GtrParams::jc69(0.7), 4, -321.25, 11));
  const std::string full = out.str();
  ASSERT_GT(full.size(), 100u);

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    EXPECT_THROW(read_checkpoint(in), Error) << "prefix of " << cut << " bytes was accepted";
  }
  // ...and the full file still reads back, so the loop above proves the
  // boundary is exactly at the final byte.
  std::istringstream in(full);
  EXPECT_EQ(read_checkpoint(in).rounds_completed, 4);
}

TEST(Checkpoint, ResumedSearchMatchesUninterruptedRun) {
  // Reference run: search to convergence, checkpointing after every round.
  const auto alignment = simulate::paper_dataset(800, 31, 12);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrParams params = model::GtrParams::jc69(0.9);
  const model::GtrModel model(params);

  SearchOptions options;
  options.optimize_model = false;

  Rng rng(3);
  tree::Tree full_tree = tree::parsimony_starting_tree(patterns, rng);
  core::LikelihoodEngine full_engine(patterns, model, full_tree);

  std::vector<Checkpoint> checkpoints;
  SearchOptions recording = options;
  recording.round_callback = [&](int round, double lnl) {
    checkpoints.push_back(
        make_checkpoint(full_tree, alignment.taxon_names(), params, round, lnl, 3));
  };
  const auto full_result = run_tree_search(full_engine, full_tree, recording);
  ASSERT_GE(checkpoints.size(), 1u);

  // "Crash" after the first round: restore from that checkpoint and finish.
  const auto& resume_point = checkpoints.front();
  tree::Tree resumed_tree = resume_point.restore_tree();
  core::LikelihoodEngine resumed_engine(patterns, model::GtrModel(resume_point.model_params),
                                        resumed_tree);
  const auto resumed_result = run_tree_search(resumed_engine, resumed_tree, options);

  EXPECT_EQ(tree::robinson_foulds(full_tree, resumed_tree), 0)
      << "resumed search must land on the same topology";
  EXPECT_NEAR(resumed_result.log_likelihood, full_result.log_likelihood,
              std::abs(full_result.log_likelihood) * 1e-9 + 1e-5);
}

}  // namespace
}  // namespace miniphi::search
