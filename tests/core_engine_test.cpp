// End-to-end correctness of the likelihood engine against an independent
// brute-force Felsenstein implementation, plus the likelihood invariants the
// paper's computation relies on (virtual-root invariance, scaling,
// compression, slicing, derivative consistency).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/engine.hpp"
#include "src/tree/moves.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

using testutil::brute_force_log_likelihood;
using testutil::random_alignment;
using testutil::random_gtr_params;

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::isa_supported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::isa_supported(simd::Isa::kAvx512)) isas.push_back(simd::Isa::kAvx512);
  return isas;
}

class EngineVsBruteForce : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineVsBruteForce, MatchesReferenceOnRandomInstances) {
  const auto [ntaxa, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const auto alignment = random_alignment(ntaxa, 120, rng, /*ambiguity=*/0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  const double reference = brute_force_log_likelihood(tree, patterns, model);
  for (const auto isa : supported_isas()) {
    LikelihoodEngine::Config config;
    config.isa = isa;
    LikelihoodEngine engine(patterns, model, tree, config);
    const double value = engine.log_likelihood(tree.tip(0));
    EXPECT_NEAR(value, reference, std::abs(reference) * 1e-10 + 1e-8)
        << "isa=" << simd::to_string(isa);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, EngineVsBruteForce,
    ::testing::Combine(::testing::Values(3, 4, 5, 8, 15, 24), ::testing::Range(0, 3)));

class EngineInvariants : public ::testing::TestWithParam<simd::Isa> {
 protected:
  void SetUp() override {
    if (!simd::isa_supported(GetParam())) GTEST_SKIP() << "ISA not supported on this host";
  }
};

TEST_P(EngineInvariants, VirtualRootPlacementInvariance) {
  // The pulley principle: under a reversible model the likelihood does not
  // depend on which branch carries the virtual root (paper Section IV).
  Rng rng(2024);
  const auto alignment = random_alignment(10, 200, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);
  const double reference = engine.log_likelihood(tree.tip(0));
  for (tree::Slot* edge : tree.edges()) {
    const double value = engine.log_likelihood(edge);
    EXPECT_NEAR(value, reference, std::abs(reference) * 1e-11 + 1e-9);
  }
}

TEST_P(EngineInvariants, PatternCompressionPreservesLikelihood) {
  Rng rng(7);
  const auto alignment = random_alignment(4, 300, rng, 0.1);
  const auto compressed = bio::compress_patterns(alignment);
  const auto uncompressed = bio::uncompressed_patterns(alignment);
  ASSERT_LT(compressed.pattern_count(), uncompressed.pattern_count());

  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(4, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine_c(compressed, model, tree, config);
  LikelihoodEngine engine_u(uncompressed, model, tree, config);
  const double a = engine_c.log_likelihood(tree.tip(0));
  const double b = engine_u.log_likelihood(tree.tip(0));
  EXPECT_NEAR(a, b, std::abs(a) * 1e-11 + 1e-9);
}

TEST_P(EngineInvariants, ScalingTriggersOnDeepTreesAndStaysFinite) {
  // A long caterpillar drives CLA magnitudes below 2^-256; without scaling
  // the likelihood would underflow to -inf.
  Rng rng(31337);
  const int ntaxa = 600;
  const auto alignment = random_alignment(ntaxa, 8, rng);
  const auto patterns = bio::uncompressed_patterns(alignment);
  const model::GtrModel model(model::GtrParams::jc69(0.8));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);
  const double value = engine.log_likelihood(tree.tip(0));
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_LT(value, 0.0);

  // Cross-check against the scalar back-end (also scaled, independently run).
  LikelihoodEngine::Config scalar_config;
  scalar_config.isa = simd::Isa::kScalar;
  LikelihoodEngine scalar_engine(patterns, model, tree, scalar_config);
  const double reference = scalar_engine.log_likelihood(tree.tip(0));
  EXPECT_NEAR(value, reference, std::abs(reference) * 1e-10);
}

TEST_P(EngineInvariants, SliceDecompositionSumsToWhole) {
  // Two engines over complementary pattern slices reproduce the full
  // likelihood — the exact contract of the fork-join and MPI partitions.
  Rng rng(55);
  const auto alignment = random_alignment(12, 257, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(12, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine whole(patterns, model, tree, config);
  const double full = whole.log_likelihood(tree.tip(0));

  const auto npat = static_cast<std::int64_t>(patterns.pattern_count());
  for (const std::int64_t cut : {std::int64_t{1}, npat / 3, npat / 2, npat - 1}) {
    LikelihoodEngine::Config low = config;
    low.begin = 0;
    low.end = cut;
    LikelihoodEngine::Config high = config;
    high.begin = cut;
    high.end = npat;
    LikelihoodEngine engine_low(patterns, model, tree, low);
    LikelihoodEngine engine_high(patterns, model, tree, high);
    const double sum =
        engine_low.log_likelihood(tree.tip(0)) + engine_high.log_likelihood(tree.tip(0));
    EXPECT_NEAR(sum, full, std::abs(full) * 1e-11 + 1e-9) << "cut=" << cut;
  }
}

TEST_P(EngineInvariants, DerivativesMatchFiniteDifferences) {
  Rng rng(404);
  const auto alignment = random_alignment(9, 150, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(9, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);

  for (tree::Slot* edge : tree.edges()) {
    engine.prepare_derivatives(edge);
    const double z = edge->length;
    const auto [first, second] = engine.derivatives(z);

    const double h = 1e-6;
    const auto eval_at = [&](double value) {
      tree::Tree::set_length(edge, value);
      // The branch between the two endpoint CLAs does not enter either CLA,
      // so no invalidation is needed — evaluate() sees the new length.
      const double result = engine.log_likelihood(edge);
      tree::Tree::set_length(edge, z);
      return result;
    };
    const double plus = eval_at(z + h);
    const double minus = eval_at(z - h);
    EXPECT_NEAR(first, (plus - minus) / (2 * h), 1e-3 * (1.0 + std::abs(first)));

    // Second derivative needs a wider stencil: with h = 1e-6 the O(ε/h²)
    // cancellation noise would dominate.
    const double h2 = 1e-4;
    const double plus2 = eval_at(z + h2);
    const double minus2 = eval_at(z - h2);
    const double base = eval_at(z);
    EXPECT_NEAR(second, (plus2 - 2 * base + minus2) / (h2 * h2),
                2e-2 * (1.0 + std::abs(second)));
  }
}

TEST_P(EngineInvariants, BranchOptimizationImprovesLikelihood) {
  Rng rng(777);
  const auto alignment = random_alignment(10, 250, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);
  const double before = engine.log_likelihood(tree.tip(0));
  double previous = before;
  // Coordinate ascent: every smoothing pass must be monotone non-decreasing.
  for (int pass = 0; pass < 16; ++pass) {
    const double current = engine.optimize_all_branches(tree.tip(0), 1);
    EXPECT_GE(current, previous - 1e-7) << "pass " << pass;
    previous = current;
  }
  EXPECT_GE(previous, before - 1e-9);

  // Near the joint optimum every branch derivative must be ~0 (or pinned).
  for (tree::Slot* edge : tree.edges()) {
    engine.prepare_derivatives(edge);
    const auto [first, _] = engine.derivatives(edge->length);
    if (edge->length > kMinBranchLength * 2 && edge->length < kMaxBranchLength / 2) {
      EXPECT_NEAR(first, 0.0, 0.05) << "branch " << edge->slot_index;
    }
  }
}

TEST_P(EngineInvariants, OpenMpModeMatchesSerial) {
  Rng rng(606);
  const auto alignment = random_alignment(11, 400, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(11, rng);

  LikelihoodEngine::Config serial;
  serial.isa = GetParam();
  LikelihoodEngine engine_serial(patterns, model, tree, serial);

  LikelihoodEngine::Config parallel = serial;
  parallel.use_openmp = true;
  LikelihoodEngine engine_parallel(patterns, model, tree, parallel);

  const double a = engine_serial.log_likelihood(tree.tip(0));
  const double b = engine_parallel.log_likelihood(tree.tip(0));
  EXPECT_NEAR(a, b, std::abs(a) * 1e-11 + 1e-9);
}

TEST_P(EngineInvariants, TopologyChangeInvalidationIsRespected) {
  // NNI deep inside the tree, with explicit invalidation of the touched
  // nodes: likelihood must equal a freshly built engine on the same topology.
  Rng rng(8888);
  const auto alignment = random_alignment(12, 180, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(12, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);
  (void)engine.log_likelihood(tree.tip(0));  // populate all CLAs

  // Find an internal edge and apply an NNI.
  tree::Slot* internal = nullptr;
  for (tree::Slot* edge : tree.edges()) {
    if (!edge->is_tip() && !edge->back->is_tip()) {
      internal = edge;
      break;
    }
  }
  ASSERT_NE(internal, nullptr);
  ASSERT_TRUE(tree::nni(tree, internal, 0));
  engine.invalidate_node(internal->node_id);
  engine.invalidate_node(internal->back->node_id);

  const double incremental = engine.log_likelihood(tree.tip(0));
  LikelihoodEngine fresh(patterns, model, tree, config);
  const double scratch = fresh.log_likelihood(tree.tip(0));
  EXPECT_NEAR(incremental, scratch, std::abs(scratch) * 1e-11 + 1e-9);
}

TEST_P(EngineInvariants, StatsCountKernelInvocations) {
  Rng rng(12);
  const auto alignment = random_alignment(6, 64, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(6, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);
  (void)engine.log_likelihood(tree.tip(0));

  // Full traversal: all inner CLAs (n-2 = 4) computed once, one evaluate.
  EXPECT_EQ(engine.stats(Kernel::kNewview).calls, 4);
  EXPECT_EQ(engine.stats(Kernel::kEvaluate).calls, 1);
  EXPECT_EQ(engine.stats(Kernel::kNewview).sites,
            4 * static_cast<std::int64_t>(patterns.pattern_count()));

  // Second call with no changes: everything cached except evaluate.
  (void)engine.log_likelihood(tree.tip(0));
  EXPECT_EQ(engine.stats(Kernel::kNewview).calls, 4);
  EXPECT_EQ(engine.stats(Kernel::kEvaluate).calls, 2);

  engine.reset_stats();
  EXPECT_EQ(engine.stats(Kernel::kEvaluate).calls, 0);
}

TEST_P(EngineInvariants, RandomMoveStressAgainstFreshEngine) {
  // Long random sequence of SPR and NNI moves with incremental invalidation;
  // after every move the incrementally maintained likelihood must equal a
  // freshly built engine's.  This is the strongest test of the orientation /
  // invalidation machinery the search relies on.
  Rng rng(13579);
  const auto alignment = random_alignment(14, 120, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(14, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine engine(patterns, model, tree, config);
  (void)engine.log_likelihood(tree.tip(0));

  for (int step = 0; step < 60; ++step) {
    const bool do_nni = rng.below(2) == 0;
    if (do_nni) {
      // Random internal edge.
      std::vector<tree::Slot*> internal;
      for (tree::Slot* e : tree.edges()) {
        if (!e->is_tip() && !e->back->is_tip()) internal.push_back(e);
      }
      tree::Slot* edge = internal[rng.below(internal.size())];
      ASSERT_TRUE(tree::nni(tree, edge, static_cast<int>(rng.below(2))));
      engine.invalidate_node(edge->node_id);
      engine.invalidate_node(edge->back->node_id);
    } else {
      // Random SPR: prune a random inner slot's subtree, regraft somewhere.
      const int inner = static_cast<int>(rng.below(static_cast<std::uint64_t>(tree.inner_count())));
      tree::Slot* p = tree.inner_slot(inner, static_cast<int>(rng.below(3)));
      const auto record = tree::prune(tree, p);
      engine.invalidate_node(record.left->node_id);
      engine.invalidate_node(record.right->node_id);
      engine.invalidate_node(p->node_id);
      const auto candidates = tree::insertion_candidates(record, 4);
      if (candidates.empty()) {
        tree::undo_prune(tree, record);
        engine.invalidate_node(record.left->node_id);
        engine.invalidate_node(record.right->node_id);
        continue;
      }
      tree::Slot* e = candidates[rng.below(candidates.size())];
      tree::Slot* other = e->back;
      tree::regraft(tree, record, e, rng.uniform(0.2, 0.8));
      engine.invalidate_node(e->node_id);
      engine.invalidate_node(other->node_id);
      engine.invalidate_node(p->node_id);
    }
    // Also perturb a random branch length.
    if (step % 3 == 0) {
      tree::Slot* edge = tree.edges()[rng.below(static_cast<std::uint64_t>(tree.edge_count()))];
      tree::Tree::set_length(edge, rng.uniform(0.01, 1.0));
      engine.invalidate_node(edge->node_id);
      engine.invalidate_node(edge->back->node_id);
    }
    tree.validate();

    // Evaluate at a random edge; compare with a from-scratch engine.
    tree::Slot* root = tree.edges()[rng.below(static_cast<std::uint64_t>(tree.edge_count()))];
    const double incremental = engine.log_likelihood(root);
    LikelihoodEngine fresh(patterns, model, tree, config);
    const double scratch = fresh.log_likelihood(root);
    ASSERT_NEAR(incremental, scratch, std::abs(scratch) * 1e-10 + 1e-8) << "step " << step;
  }
}

TEST_P(EngineInvariants, RecomputationModeMatchesFullBudget) {
  // The memory-saving mode (Section V-A's unsupported technique, citing
  // Izquierdo-Carrasco et al.): with a small CLA buffer budget the engine
  // evicts and recomputes CLAs; results must be identical, only slower.
  Rng rng(24680);
  const auto alignment = random_alignment(32, 150, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(32, rng);

  LikelihoodEngine::Config full_config;
  full_config.isa = GetParam();

  for (const int budget : {6, 10, 15}) {
    // Fresh engines so kernel-call counters compare identical workloads.
    LikelihoodEngine full(patterns, model, tree, full_config);
    LikelihoodEngine::Config tight_config = full_config;
    tight_config.cla_buffers = budget;
    LikelihoodEngine tight(patterns, model, tree, tight_config);
    EXPECT_EQ(tight.cla_buffer_count(), budget);
    EXPECT_EQ(full.cla_buffer_count(), tree.inner_count());

    // Evaluate at several scattered edges: identical likelihoods...
    const auto edges = tree.edges();
    for (const std::size_t index : {std::size_t{0}, edges.size() / 2, edges.size() - 1}) {
      const double expected = full.log_likelihood(edges[index]);
      const double actual = tight.log_likelihood(edges[index]);
      ASSERT_NEAR(actual, expected, std::abs(expected) * 1e-12 + 1e-10)
          << "budget " << budget << " edge " << index;
    }
    // ...with eviction visible as extra (recomputation) newview work —
    // guaranteed under the tightest budget, never *less* work otherwise.
    EXPECT_GE(tight.stats(Kernel::kNewview).calls, full.stats(Kernel::kNewview).calls)
        << "budget " << budget;
    if (budget == 6) {
      EXPECT_GT(tight.stats(Kernel::kNewview).calls, full.stats(Kernel::kNewview).calls);
    }
  }
}

TEST_P(EngineInvariants, RecomputationSurvivesBranchOptimization) {
  Rng rng(11111);
  const auto alignment = random_alignment(20, 120, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree_full = tree::Tree::random(20, rng);
  tree::Tree tree_tight(tree_full);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  LikelihoodEngine full(patterns, model, tree_full, config);
  LikelihoodEngine::Config tight_config = config;
  tight_config.cla_buffers = 6;
  LikelihoodEngine tight(patterns, model, tree_tight, tight_config);

  const double lnl_full = full.optimize_all_branches(tree_full.tip(0), 2);
  const double lnl_tight = tight.optimize_all_branches(tree_tight.tip(0), 2);
  EXPECT_NEAR(lnl_full, lnl_tight, std::abs(lnl_full) * 1e-10 + 1e-8);
  for (int i = 0; i < tree_full.slot_count(); ++i) {
    EXPECT_NEAR(tree_full.slot(i)->length, tree_tight.slot(i)->length, 1e-9);
  }
}

TEST(EngineBudget, RejectsBudgetBelowMinimum) {
  Rng rng(9);
  const auto alignment = random_alignment(10, 50, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);
  LikelihoodEngine::Config config;
  config.cla_buffers = 2;
  EXPECT_THROW(LikelihoodEngine(patterns, model, tree, config), Error);
}

INSTANTIATE_TEST_SUITE_P(Isas, EngineInvariants,
                         ::testing::Values(simd::Isa::kScalar, simd::Isa::kAvx2,
                                           simd::Isa::kAvx512),
                         [](const auto& param_info) { return simd::to_string(param_info.param); });

}  // namespace
}  // namespace miniphi::core
