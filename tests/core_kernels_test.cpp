// Kernel-level tests: every vectorized back-end must agree with the scalar
// reference on randomized inputs, for all child-type combinations and tuning
// variants (streaming stores on/off, prefetching on/off).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/kernels.hpp"
#include "src/core/ptable.hpp"
#include "src/model/gtr.hpp"
#include "src/util/aligned.hpp"
#include "src/util/rng.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

struct KernelFixtureData {
  std::int64_t npat = 0;
  AlignedDoubles left_cla;
  AlignedDoubles right_cla;
  std::vector<std::int32_t> left_scale;
  std::vector<std::int32_t> right_scale;
  std::vector<bio::DnaCode> left_codes;
  std::vector<bio::DnaCode> right_codes;
  std::vector<std::uint32_t> weights;
  AlignedDoubles ptable_left = AlignedDoubles(kPtableSize);
  AlignedDoubles ptable_right = AlignedDoubles(kPtableSize);
  AlignedDoubles ump_left = AlignedDoubles(kUmpSize);
  AlignedDoubles ump_right = AlignedDoubles(kUmpSize);
  AlignedDoubles wtable;
  AlignedDoubles tipvec16;
  AlignedDoubles diag = AlignedDoubles(kDiagSize);
  AlignedDoubles evtab = AlignedDoubles(kEvtabSize);
  AlignedDoubles dtab = AlignedDoubles(kDtabSize);
};

KernelFixtureData make_fixture(std::int64_t npat, Rng& rng) {
  KernelFixtureData data;
  data.npat = npat;
  const auto params = testutil::random_gtr_params(rng);
  const model::GtrModel model(params);

  const auto fill_cla = [&](AlignedDoubles& cla) {
    cla.resize(static_cast<std::size_t>(npat) * kSiteBlock);
    for (auto& value : cla) value = rng.uniform(-1.0, 1.0);
  };
  fill_cla(data.left_cla);
  fill_cla(data.right_cla);
  data.left_scale.resize(static_cast<std::size_t>(npat));
  data.right_scale.resize(static_cast<std::size_t>(npat));
  data.left_codes.resize(static_cast<std::size_t>(npat));
  data.right_codes.resize(static_cast<std::size_t>(npat));
  data.weights.resize(static_cast<std::size_t>(npat));
  for (std::int64_t s = 0; s < npat; ++s) {
    data.left_scale[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(rng.below(3));
    data.right_scale[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(rng.below(3));
    data.left_codes[static_cast<std::size_t>(s)] =
        static_cast<bio::DnaCode>(1 + rng.below(15));
    data.right_codes[static_cast<std::size_t>(s)] =
        static_cast<bio::DnaCode>(1 + rng.below(15));
    data.weights[static_cast<std::size_t>(s)] = static_cast<std::uint32_t>(1 + rng.below(5));
  }

  const double z1 = rng.uniform(0.02, 0.8);
  const double z2 = rng.uniform(0.02, 0.8);
  build_ptable(model, z1, data.ptable_left);
  build_ptable(model, z2, data.ptable_right);
  build_ump(model, data.ptable_left, data.ump_left);
  build_ump(model, data.ptable_right, data.ump_right);
  data.wtable = build_wtable(model);
  data.tipvec16 = build_tipvec16(model);
  build_diag(model, z1, data.diag);
  build_evtab(data.diag, data.tipvec16, data.evtab);
  build_dtab(model, z1, data.dtab);
  return data;
}

ChildInput child_as_inner(const KernelFixtureData& data, bool left) {
  ChildInput input;
  input.cla = left ? data.left_cla.data() : data.right_cla.data();
  input.scale = left ? data.left_scale.data() : data.right_scale.data();
  input.ptable = left ? data.ptable_left.data() : data.ptable_right.data();
  return input;
}

ChildInput child_as_tip(const KernelFixtureData& data, bool left) {
  ChildInput input;
  input.codes = left ? data.left_codes.data() : data.right_codes.data();
  input.ptable = left ? data.ptable_left.data() : data.ptable_right.data();
  input.ump = left ? data.ump_left.data() : data.ump_right.data();
  return input;
}

struct CaseParam {
  simd::Isa isa;
  bool left_tip;
  bool right_tip;
  KernelTuning tuning;
};

std::string case_name(const ::testing::TestParamInfo<CaseParam>& info) {
  const auto& p = info.param;
  std::string name = simd::to_string(p.isa);
  name += p.left_tip ? "_tipL" : "_innerL";
  name += p.right_tip ? "_tipR" : "_innerR";
  name += p.tuning.streaming_stores ? "_stream" : "_nostream";
  name += p.tuning.prefetch_distance > 0 ? "_prefetch" : "_noprefetch";
  return name;
}

class KernelAgreement : public ::testing::TestWithParam<CaseParam> {
 protected:
  void SetUp() override {
    if (!simd::isa_supported(GetParam().isa)) GTEST_SKIP() << "ISA unsupported";
  }
};

TEST_P(KernelAgreement, NewviewMatchesScalar) {
  const auto& param = GetParam();
  Rng rng(777);
  auto data = make_fixture(203, rng);  // odd count exercises tails

  const auto run = [&](const KernelOps& ops, KernelTuning tuning, AlignedDoubles& out,
                       std::vector<std::int32_t>& out_scale) {
    out.assign(static_cast<std::size_t>(data.npat) * kSiteBlock, 0.0);
    out_scale.assign(static_cast<std::size_t>(data.npat), 0);
    NewviewCtx ctx;
    ctx.parent_cla = out.data();
    ctx.parent_scale = out_scale.data();
    ctx.left = param.left_tip ? child_as_tip(data, true) : child_as_inner(data, true);
    ctx.right = param.right_tip ? child_as_tip(data, false) : child_as_inner(data, false);
    ctx.wtable = data.wtable.data();
    ctx.begin = 0;
    ctx.end = data.npat;
    ctx.tuning = tuning;
    ops.newview(ctx);
  };

  AlignedDoubles expected, actual;
  std::vector<std::int32_t> expected_scale, actual_scale;
  run(scalar_kernel_ops(), KernelTuning{}, expected, expected_scale);
  run(get_kernel_ops(param.isa), param.tuning, actual, actual_scale);

  // FMA contraction reorders rounding relative to the scalar mul+add chain;
  // agreement is tight but not bitwise.
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], std::abs(expected[i]) * 1e-11 + 1e-13) << "i=" << i;
  }
  EXPECT_EQ(actual_scale, expected_scale);
}

TEST_P(KernelAgreement, EvaluateMatchesScalar) {
  const auto& param = GetParam();
  Rng rng(888);
  auto data = make_fixture(157, rng);

  const auto run = [&](const KernelOps& ops) {
    EvaluateCtx ctx;
    ctx.left_cla = data.left_cla.data();
    ctx.left_scale = data.left_scale.data();
    if (param.right_tip) {
      ctx.right_codes = data.right_codes.data();
      ctx.evtab = data.evtab.data();
    } else {
      ctx.right_cla = data.right_cla.data();
      ctx.right_scale = data.right_scale.data();
      ctx.diag = data.diag.data();
    }
    ctx.weights = data.weights.data();
    ctx.begin = 0;
    ctx.end = data.npat;
    return ops.evaluate(ctx);
  };

  const double expected = run(scalar_kernel_ops());
  const double actual = run(get_kernel_ops(param.isa));
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-12 + 1e-10);
}

TEST_P(KernelAgreement, DerivativeSumMatchesScalar) {
  const auto& param = GetParam();
  Rng rng(999);
  auto data = make_fixture(211, rng);

  const auto run = [&](const KernelOps& ops, KernelTuning tuning, AlignedDoubles& out) {
    out.assign(static_cast<std::size_t>(data.npat) * kSiteBlock, 0.0);
    SumCtx ctx;
    ctx.sum = out.data();
    ctx.left_cla = data.left_cla.data();
    if (param.right_tip) {
      ctx.right_codes = data.right_codes.data();
      ctx.tipvec16 = data.tipvec16.data();
    } else {
      ctx.right_cla = data.right_cla.data();
    }
    ctx.begin = 0;
    ctx.end = data.npat;
    ctx.tuning = tuning;
    ops.derivative_sum(ctx);
  };

  AlignedDoubles expected, actual;
  run(scalar_kernel_ops(), KernelTuning{}, expected);
  run(get_kernel_ops(param.isa), param.tuning, actual);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Element-wise product: results must be bit-identical.
    EXPECT_DOUBLE_EQ(actual[i], expected[i]) << "i=" << i;
  }
}

TEST_P(KernelAgreement, DerivativeCoreMatchesScalar) {
  const auto& param = GetParam();
  Rng rng(1111);
  auto data = make_fixture(173, rng);  // odd: exercises the blocked + tail path

  // Use a real sum buffer (product of CLAs) so magnitudes are realistic.
  AlignedDoubles sum(static_cast<std::size_t>(data.npat) * kSiteBlock);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum[i] = std::abs(data.left_cla[i] * data.right_cla[i]);
  }

  const auto run = [&](const KernelOps& ops) {
    DerivCtx ctx;
    ctx.sum = sum.data();
    ctx.weights = data.weights.data();
    ctx.dtab = data.dtab.data();
    ctx.begin = 0;
    ctx.end = data.npat;
    ops.derivative_core(ctx);
    return std::pair<double, double>{ctx.out_first, ctx.out_second};
  };

  const auto [e1, e2] = run(scalar_kernel_ops());
  const auto [a1, a2] = run(get_kernel_ops(param.isa));
  EXPECT_NEAR(a1, e1, std::abs(e1) * 1e-11 + 1e-9);
  EXPECT_NEAR(a2, e2, std::abs(e2) * 1e-11 + 1e-9);
}

std::vector<CaseParam> all_cases() {
  std::vector<CaseParam> cases;
  const KernelTuning defaults{};
  KernelTuning plain;
  plain.streaming_stores = false;
  plain.prefetch_distance = 0;
  for (const auto isa : {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    for (const bool left_tip : {false, true}) {
      for (const bool right_tip : {false, true}) {
        cases.push_back({isa, left_tip, right_tip, defaults});
        cases.push_back({isa, left_tip, right_tip, plain});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KernelAgreement, ::testing::ValuesIn(all_cases()),
                         case_name);

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  const auto ops = get_kernel_ops(simd::Isa::kScalar);
  EXPECT_EQ(ops.isa, simd::Isa::kScalar);
  EXPECT_NE(ops.newview, nullptr);
  EXPECT_NE(ops.evaluate, nullptr);
  EXPECT_NE(ops.derivative_sum, nullptr);
  EXPECT_NE(ops.derivative_core, nullptr);
}

TEST(KernelDispatch, BestIsaIsUsable) {
  const auto isa = simd::best_supported_isa();
  EXPECT_NO_THROW(get_kernel_ops(isa));
}

TEST(KernelConstants, ScalingThresholdsAreConsistent) {
  EXPECT_DOUBLE_EQ(kScaleThreshold * kScaleFactor, 1.0);
  EXPECT_NEAR(kLogScaleThreshold, std::log(kScaleThreshold), 1e-12);
}

}  // namespace
}  // namespace miniphi::core
