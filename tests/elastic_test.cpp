// Tests for the elastic failure model (DESIGN.md §11): heartbeat-based
// failure detection, the ULFM-style shrink()/agree() membership protocol in
// minimpi, shard-based re-sharding in the distributed evaluator, the
// continue-in-place recovery loop in the ExaML driver, and the straggler
// defense.
//
// The acceptance property throughout: a search that loses a rank mid-flight
// continues on the shrunken world WITHOUT a checkpoint restart and converges
// to the bit-identical final tree and log-likelihood of a fault-free run.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/examl/distributed_evaluator.hpp"
#include "src/examl/driver.hpp"
#include "src/io/newick.hpp"
#include "src/minimpi/faults.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::mpi {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

std::int64_t metric_value(const std::string& name) {
  for (const auto& metric : obs::Registry::instance().snapshot()) {
    if (metric.name == name) {
      return metric.kind == obs::MetricKind::kHistogram ? metric.histogram.count : metric.value;
    }
  }
  return -1;  // not registered
}

// --- Membership protocol ----------------------------------------------------

TEST(Elastic, KilledRankBecomesFailureDetectedAndSurvivorsShrink) {
  // In a non-elastic world a mid-search kill aborts everyone; in an elastic
  // world the survivors get RankFailureDetected (the world stays alive),
  // shrink to a two-rank epoch, and keep computing collectives.
  World world(3);
  ElasticOptions elastic;
  elastic.enabled = true;
  world.set_elastic(elastic);
  FaultPlan plan;
  plan.kill_rank_mid_search(1, 2);
  world.set_fault_plan(plan);

  std::array<double, 3> after_shrink{};
  std::array<std::uint64_t, 3> epochs{};
  world.run([&](Communicator& comm) {
    const auto index = static_cast<std::size_t>(comm.rank());
    (void)comm.allreduce_sum(1.0);  // collective #1: full world
    try {
      (void)comm.allreduce_sum(1.0);  // collective #2: rank 1 dies at entry
      if (comm.rank() != 1) ADD_FAILURE() << "survivors must be woken by the failure";
    } catch (const RankFailureDetected& failure) {
      EXPECT_EQ(failure.failed_rank(), 1);
      EXPECT_TRUE(contains(failure.what(), "rank 1")) << failure.what();
      const ShrinkResult shrunk = comm.shrink();
      EXPECT_EQ(shrunk.epoch, 1u);
      EXPECT_EQ(shrunk.active, (std::vector<int>{0, 2}));
      EXPECT_EQ(shrunk.failed, std::vector<int>{1});
      EXPECT_TRUE(comm.agree(true));
      after_shrink[index] = comm.allreduce_sum(1.0);  // survivors-only collective
      epochs[index] = comm.epoch();
      EXPECT_EQ(comm.active_size(), 2);
    }
  });
  EXPECT_FALSE(world.aborted());
  EXPECT_EQ(world.epoch(), 1u);
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{1});
  EXPECT_DOUBLE_EQ(after_shrink[0], 2.0);  // two survivors, not three ranks
  EXPECT_DOUBLE_EQ(after_shrink[2], 2.0);
  EXPECT_EQ(epochs[0], 1u);
  EXPECT_EQ(epochs[2], 1u);
}

TEST(Elastic, AgreeIsUnanimousAndAnyDissentWins) {
  World world(3);
  ElasticOptions elastic;
  elastic.enabled = true;
  world.set_elastic(elastic);
  std::array<bool, 3> verdicts{true, true, true};
  world.run([&](Communicator& comm) {
    verdicts[static_cast<std::size_t>(comm.rank())] = comm.agree(comm.rank() != 2);
  });
  // Rank 2 voted false — every rank must see the collective 'no'.
  EXPECT_FALSE(verdicts[0]);
  EXPECT_FALSE(verdicts[1]);
  EXPECT_FALSE(verdicts[2]);
}

TEST(Elastic, QuorumLossAbortsInsteadOfShrinking) {
  // min_ranks = 2 with a 2-rank world: losing one rank leaves the survivor
  // below quorum, so shrink() must escalate to AbortedError (the driver's
  // checkpoint-restart path), not install a 1-rank epoch.
  World world(2);
  ElasticOptions elastic;
  elastic.enabled = true;
  elastic.min_ranks = 2;
  world.set_elastic(elastic);
  FaultPlan plan;
  plan.kill_rank_mid_search(1, 1);
  world.set_fault_plan(plan);

  std::string escalation;
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 try {
                   (void)comm.allreduce_sum(1.0);
                 } catch (const RankFailureDetected&) {
                   try {
                     (void)comm.shrink();
                     ADD_FAILURE() << "shrink below quorum must abort";
                   } catch (const AbortedError& aborted) {
                     escalation = aborted.what();
                     throw;
                   }
                 }
               }),
               InjectedFault);
  EXPECT_TRUE(world.aborted());
  EXPECT_TRUE(contains(escalation, "below quorum")) << escalation;
  EXPECT_EQ(world.epoch(), 0u);  // no epoch was installed
}

TEST(Elastic, HeartbeatDetectorDeclaresSilentRankFailedAndExcludesIt) {
  // Rank 1 goes silent (computes without touching the substrate) for far
  // longer than the heartbeat timeout.  The peers blocked in a barrier must
  // detect the stale heartbeat, declare rank 1 failed, shrink, and continue;
  // when rank 1 finally returns it must be refused with RankExcludedError.
  World world(3);
  ElasticOptions elastic;
  elastic.enabled = true;
  elastic.heartbeat_interval = 25ms;
  elastic.heartbeat_timeout = 300ms;
  world.set_elastic(elastic);

  std::atomic<bool> excluded{false};
  std::array<std::uint64_t, 3> epochs{};
  world.run([&](Communicator& comm) {
    (void)comm.allreduce_sum(1.0);  // everyone beats once
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(2000ms);  // silent: no beats, not blocked
      try {
        (void)comm.allreduce_sum(1.0);
        ADD_FAILURE() << "an excluded rank must not rejoin collectives";
      } catch (const RankExcludedError& e) {
        EXPECT_TRUE(contains(e.what(), "rank 1")) << e.what();
        excluded = true;
      }
      return;
    }
    try {
      (void)comm.allreduce_sum(1.0);  // blocks until the detector fires
      ADD_FAILURE() << "survivors must be woken by the heartbeat detector";
    } catch (const RankFailureDetected& failure) {
      EXPECT_EQ(failure.failed_rank(), 1);
      EXPECT_TRUE(contains(failure.what(), "missed heartbeats")) << failure.what();
      const ShrinkResult shrunk = comm.shrink();
      EXPECT_EQ(shrunk.active, (std::vector<int>{0, 2}));
      epochs[static_cast<std::size_t>(comm.rank())] = shrunk.epoch;
      EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), 2.0);
    }
  });
  EXPECT_FALSE(world.aborted());
  EXPECT_TRUE(excluded.load());
  EXPECT_EQ(epochs[0], 1u);
  EXPECT_EQ(epochs[2], 1u);
  EXPECT_EQ(world.failed_ranks(), std::vector<int>{1});
}

TEST(Elastic, ShrinkMetricsCountDetectionsAndEpochs) {
  if constexpr (!obs::kMetricsCompiled) GTEST_SKIP() << "metrics compiled out";
  auto& registry = obs::Registry::instance();
  registry.reset();

  World world(3);
  ElasticOptions elastic;
  elastic.enabled = true;
  elastic.metrics = true;
  world.set_elastic(elastic);
  FaultPlan plan;
  plan.kill_rank_mid_search(2, 1);
  world.set_fault_plan(plan);

  world.run([&](Communicator& comm) {
    try {
      (void)comm.allreduce_sum(1.0);
    } catch (const RankFailureDetected&) {
      (void)comm.shrink();
    }
  });
  EXPECT_EQ(metric_value("elastic.detections"), 1);
  EXPECT_EQ(metric_value("elastic.shrink.count"), 1);
  EXPECT_EQ(metric_value("elastic.shrink.duration_us"), 1);  // one observation
  registry.reset();
}

// --- Fault plan: kSlowRank and validation ----------------------------------

TEST(SlowRank, InjectedDelaySlowsKernelRegionsOnce) {
  // 5 kernel regions delayed 40 ms each on rank 1: the first run must take
  // at least 200 ms; the fault is one-shot, so a second run is fast again.
  World world(2);
  FaultPlan plan;
  plan.slow_rank(1, /*from_call=*/1, /*calls=*/5, /*delay_us=*/40000);
  world.set_fault_plan(plan);
  EXPECT_TRUE(contains(plan.describe(), "slow"));

  const auto run_once = [&world] {
    const auto start = std::chrono::steady_clock::now();
    world.run([](Communicator& comm) {
      for (int i = 0; i < 6; ++i) {
        comm.on_kernel_region();
        (void)comm.allreduce_sum(1.0);
      }
    });
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
  };
  EXPECT_GE(run_once().count(), 200);
  EXPECT_LT(run_once().count(), 200);  // already fired: no residual slowdown
}

TEST(FaultPlanValidation, RejectsTargetsOutsideTheWorld) {
  FaultPlan plan;
  plan.kill_rank_mid_search(5, 3);
  try {
    plan.validate_for_world(4);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_TRUE(contains(e.what(), "targets rank 5")) << e.what();
    EXPECT_TRUE(contains(e.what(), "4 ranks")) << e.what();
    EXPECT_TRUE(contains(e.what(), "never fire")) << e.what();
  }
  // The same check guards World::set_fault_plan, so a mis-targeted plan
  // fails loudly at configuration time instead of silently never firing.
  World world(4);
  EXPECT_THROW(world.set_fault_plan(plan), Error);
  plan = FaultPlan{};
  plan.slow_rank(3, 1, 2, 1000);
  EXPECT_NO_THROW(plan.validate_for_world(4));
  EXPECT_THROW(plan.validate_for_world(3), Error);
  // Builders still reject nonsense eagerly.
  EXPECT_THROW(FaultPlan().kill_rank_mid_search(-1, 1), Error);
  EXPECT_THROW(FaultPlan().slow_rank(0, 1, 0, 1000), Error);
  EXPECT_THROW(FaultPlan().slow_rank(0, 1, 2, -5), Error);
}

}  // namespace
}  // namespace miniphi::mpi

// --- ExaML driver: continue-in-place recovery -------------------------------

namespace miniphi::examl {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

std::int64_t metric_value(const std::string& name) {
  for (const auto& metric : obs::Registry::instance().snapshot()) {
    if (metric.name == name) {
      return metric.kind == obs::MetricKind::kHistogram ? metric.histogram.count : metric.value;
    }
  }
  return -1;
}

tree::Tree tree_from_newick(const std::string& newick, const std::vector<std::string>& names) {
  return tree::Tree::from_newick(*io::parse_newick(newick), names);
}

std::int64_t per_rank_collectives(const DistributedRunResult& result, int ranks) {
  return (result.comm_stats.allreduces + result.comm_stats.broadcasts +
          result.comm_stats.barriers) /
         ranks;
}

void expect_same_outcome(const DistributedRunResult& got, const DistributedRunResult& want,
                         const std::vector<std::string>& names) {
  tree::Tree tree_want = tree_from_newick(want.final_tree_newick, names);
  tree::Tree tree_got = tree_from_newick(got.final_tree_newick, names);
  EXPECT_EQ(tree::robinson_foulds(tree_want, tree_got), 0);
  EXPECT_NEAR(got.log_likelihood, want.log_likelihood,
              std::abs(want.log_likelihood) * 1e-8 + 1e-4);
}

TEST(ShardedEvaluator, OverdecompositionPreservesSearchOutcome) {
  // shards_per_rank > 1 changes the partial-sum partition, not the search:
  // the final topology and likelihood must match the classic decomposition.
  const auto alignment = simulate::paper_dataset(300, 31, 10);
  ExperimentOptions options;
  options.search.max_rounds = 2;
  options.search.model_options.max_passes = 1;
  const auto classic = run_distributed_search(alignment, 2, options);
  ASSERT_TRUE(classic.replicas_consistent);

  ExperimentOptions sharded = options;
  sharded.fault_tolerance.sharding.shards_per_rank = 3;
  const auto fine = run_distributed_search(alignment, 2, sharded);
  EXPECT_TRUE(fine.replicas_consistent);
  expect_same_outcome(fine, classic, alignment.taxon_names());
}

TEST(ElasticRecovery, StreamGroupCommScheduleSurvivesRankLoss) {
  // Losing a rank must not disturb the stream-group schedule: the survivors
  // rebuild with the same policy over the unchanged shard geometry, the
  // traversal still posts one collective per stream epoch, and the global
  // sum is bit-identical to the pre-fault full-world value (the same fixed
  // shard-order fold over the same per-shard partials).
  const auto alignment = simulate::paper_dataset(400, 33, 10);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(34);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree base_tree = tree::Tree::random(10, rng);

  ShardingPolicy policy;
  policy.shards_per_rank = 2;  // 6 shards in the full world
  policy.stream_groups = 3;

  mpi::World world(3);
  mpi::ElasticOptions elastic;
  elastic.enabled = true;
  world.set_elastic(elastic);
  mpi::FaultPlan plan;
  // The first traversal posts 3 collectives; rank 1 dies entering the
  // first collective of the second traversal.
  plan.kill_rank_mid_search(1, 4);
  world.set_fault_plan(plan);

  std::array<double, 3> before{};
  std::array<double, 3> after{};
  std::array<int, 3> posts{};
  world.run([&](mpi::Communicator& comm) {
    const auto index = static_cast<std::size_t>(comm.rank());
    tree::Tree tree(base_tree);
    DistributedEvaluator evaluator(comm, patterns, model, tree, {}, policy);
    before[index] = evaluator.log_likelihood(tree.tip(0));
    EXPECT_EQ(evaluator.last_comm_plan().posts, 3);
    try {
      (void)evaluator.log_likelihood(tree.tip(0));
      if (comm.rank() != 1) ADD_FAILURE() << "survivors must observe the failure";
    } catch (const mpi::RankFailureDetected& failure) {
      EXPECT_EQ(failure.failed_rank(), 1);
      (void)comm.shrink();
      EXPECT_TRUE(comm.agree(true));
      tree::Tree fresh(base_tree);
      DistributedEvaluator rebuilt(comm, patterns, model, fresh, {}, policy);
      after[index] = rebuilt.log_likelihood(fresh.tip(0));
      posts[index] = rebuilt.last_comm_plan().posts;
    }
  });
  EXPECT_FALSE(world.aborted());
  for (const int rank : {0, 2}) {
    const auto index = static_cast<std::size_t>(rank);
    EXPECT_EQ(after[index], before[index]) << "rank " << rank;
    EXPECT_EQ(posts[index], 3) << "rank " << rank;
  }
}

TEST(ElasticRecovery, MidSearchKillContinuesInPlaceWithoutCheckpointRestore) {
  // The tentpole acceptance test: kill a rank mid-search in an elastic
  // world.  The run must finish with ZERO checkpoint restores and exactly
  // one shrink, on the shrunken world, and converge to the identical final
  // tree and log-likelihood as the fault-free run.
  if constexpr (obs::kMetricsCompiled) obs::Registry::instance().reset();
  const auto alignment = simulate::paper_dataset(400, 21, 10);
  const int ranks = 3;
  ExperimentOptions options;
  options.search.max_rounds = 3;
  options.search.model_options.max_passes = 1;

  const auto reference = run_distributed_search(alignment, ranks, options);
  ASSERT_EQ(reference.recoveries, 0);
  ASSERT_TRUE(reference.replicas_consistent);

  ExperimentOptions faulty = options;
  faulty.fault_tolerance.elastic.enabled = true;
  faulty.fault_tolerance.faults.kill_rank_mid_search(
      1, (3 * per_rank_collectives(reference, ranks)) / 4);
  if constexpr (obs::kMetricsCompiled) faulty.metrics = obs::MetricsMode::kOn;
  const auto recovered = run_distributed_search(alignment, ranks, faulty);

  EXPECT_EQ(recovered.recoveries, 0);  // no checkpoint restart happened
  EXPECT_EQ(recovered.in_place_recoveries, 1);
  EXPECT_EQ(recovered.final_epoch, 1u);
  EXPECT_EQ(recovered.final_world_size, ranks - 1);
  EXPECT_EQ(recovered.failed_ranks, std::vector<int>{1});
  EXPECT_TRUE(recovered.replicas_consistent);
  expect_same_outcome(recovered, reference, alignment.taxon_names());

  if constexpr (obs::kMetricsCompiled) {
    EXPECT_EQ(metric_value("ckpt.restore.calls"), 0);
    EXPECT_EQ(metric_value("elastic.shrink.count"), 1);
    EXPECT_GE(metric_value("elastic.detections"), 1);
    EXPECT_EQ(metric_value("elastic.reshard.duration_us"), 1);  // one re-shard observed
    const std::string report = obs::render_kernel_report();
    EXPECT_TRUE(contains(report, "--- elastic recovery ---")) << report;
    EXPECT_TRUE(contains(report, "elastic.shrink.count")) << report;
    EXPECT_TRUE(contains(report, "ckpt.restore.calls")) << report;
    obs::Registry::instance().reset();
  }
}

TEST(ElasticRecovery, LeadRankDeathStillProducesAResult) {
  // Rank 0 is the result-carrying rank in the classic driver; elastically
  // losing it must hand the result to the lowest survivor instead.
  const auto alignment = simulate::paper_dataset(250, 24, 8);
  const int ranks = 3;
  ExperimentOptions options;
  options.search.max_rounds = 2;
  options.search.optimize_model = false;

  const auto reference = run_distributed_search(alignment, ranks, options);
  ExperimentOptions faulty = options;
  faulty.fault_tolerance.elastic.enabled = true;
  faulty.fault_tolerance.faults.kill_rank_mid_search(
      0, per_rank_collectives(reference, ranks) / 2);
  const auto recovered = run_distributed_search(alignment, ranks, faulty);

  EXPECT_EQ(recovered.recoveries, 0);
  EXPECT_EQ(recovered.in_place_recoveries, 1);
  EXPECT_EQ(recovered.failed_ranks, std::vector<int>{0});
  EXPECT_FALSE(recovered.final_tree_newick.empty());
  expect_same_outcome(recovered, reference, alignment.taxon_names());
}

TEST(ElasticRecovery, ExhaustedInPlaceBudgetEscalatesToCheckpointRestart) {
  // max_inplace_recoveries = 0: the failure must fall through to the classic
  // checkpoint-restart ladder (recoveries == 1) and still converge.
  const auto alignment = simulate::paper_dataset(250, 25, 8);
  const int ranks = 2;
  ExperimentOptions options;
  options.search.max_rounds = 2;
  options.search.optimize_model = false;

  const auto reference = run_distributed_search(alignment, ranks, options);
  ExperimentOptions faulty = options;
  faulty.fault_tolerance.elastic.enabled = true;
  faulty.fault_tolerance.max_inplace_recoveries = 0;
  faulty.fault_tolerance.checkpoint_every_rounds = 1;
  faulty.fault_tolerance.faults.kill_rank_mid_search(
      1, (3 * per_rank_collectives(reference, ranks)) / 4);
  const auto recovered = run_distributed_search(alignment, ranks, faulty);

  EXPECT_EQ(recovered.in_place_recoveries, 0);
  EXPECT_GE(recovered.recoveries, 1);
  EXPECT_TRUE(contains(recovered.last_failure, "rank 1")) << recovered.last_failure;
  expect_same_outcome(recovered, reference, alignment.taxon_names());
}

TEST(ElasticRecovery, SlowRankTriggersBoundedRebalance) {
  // A persistently straggling rank (1 ms injected into every one of its
  // kernel regions — a throttled node, not a blip) must be flagged by the
  // timing vector riding the lnL allreduce and lose a shard to the fast
  // rank — without perturbing the search outcome, and never more than
  // max_moves times.
  const auto alignment = simulate::paper_dataset(250, 26, 8);
  const int ranks = 2;
  ExperimentOptions options;
  options.search.max_rounds = 2;
  options.search.optimize_model = false;
  options.fault_tolerance.sharding.shards_per_rank = 2;

  const auto reference = run_distributed_search(alignment, ranks, options);
  ASSERT_EQ(reference.rebalance_moves, 0);  // defense off by default

  ExperimentOptions slowed = options;
  slowed.fault_tolerance.sharding.straggler_defense = true;
  slowed.fault_tolerance.sharding.straggler_factor = 3.0;
  slowed.fault_tolerance.sharding.check_every = 4;
  slowed.fault_tolerance.sharding.window = 2;
  slowed.fault_tolerance.sharding.cooldown = 4;
  slowed.fault_tolerance.sharding.max_moves = 2;
  slowed.fault_tolerance.faults.slow_rank(1, /*from_call=*/1, /*calls=*/1000000,
                                          /*delay_us=*/1000);
  const auto rebalanced = run_distributed_search(alignment, ranks, slowed);

  EXPECT_GE(rebalanced.rebalance_moves, 1);
  EXPECT_LE(rebalanced.rebalance_moves, 2);  // bounded by max_moves
  EXPECT_EQ(rebalanced.recoveries, 0);
  EXPECT_TRUE(rebalanced.replicas_consistent);
  expect_same_outcome(rebalanced, reference, alignment.taxon_names());
}

TEST(ElasticRecovery, SeededKillScheduleSoak) {
  // Satellite soak: a seeded matrix over world size × failure step.  Every
  // configuration must continue in place (no checkpoint restart) and land on
  // the bit-identical tree/lnL of its fault-free reference.
  const auto alignment = simulate::paper_dataset(200, 27, 8);
  ExperimentOptions options;
  options.search.max_rounds = 2;
  options.search.optimize_model = false;
  const auto names = alignment.taxon_names();

  for (const int ranks : {2, 3}) {
    const auto reference = run_distributed_search(alignment, ranks, options);
    ASSERT_TRUE(reference.replicas_consistent);
    const std::int64_t per_rank = per_rank_collectives(reference, ranks);
    int case_index = 0;
    for (const int quarter : {1, 2, 3}) {
      // Deterministic victim choice that also covers killing rank 0.
      const int victim = case_index++ % ranks;
      const std::int64_t step = std::max<std::int64_t>(2, quarter * per_rank / 4);
      SCOPED_TRACE("ranks=" + std::to_string(ranks) + " victim=" + std::to_string(victim) +
                   " step=" + std::to_string(step));
      ExperimentOptions faulty = options;
      faulty.fault_tolerance.elastic.enabled = true;
      faulty.fault_tolerance.faults.kill_rank_mid_search(victim, step);
      const auto recovered = run_distributed_search(alignment, ranks, faulty);
      EXPECT_EQ(recovered.recoveries, 0);
      EXPECT_EQ(recovered.in_place_recoveries, 1);
      EXPECT_EQ(recovered.failed_ranks, std::vector<int>{victim});
      EXPECT_TRUE(recovered.replicas_consistent);
      expect_same_outcome(recovered, reference, names);
    }
  }
}

}  // namespace
}  // namespace miniphi::examl
