// Tests for src/examl: the distributed evaluator against the serial engine,
// replica consistency under real rank parallelism, and trace generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/examl/distributed_evaluator.hpp"
#include "src/examl/driver.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/splits.hpp"
#include "tests/testutil.hpp"

namespace miniphi::examl {
namespace {

bio::Alignment test_alignment(std::int64_t sites, std::uint64_t seed) {
  return simulate::paper_dataset(sites, seed, /*taxon_count=*/10);
}

TEST(DistributedEvaluator, LikelihoodMatchesSerial) {
  const auto alignment = test_alignment(600, 1);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(2);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree serial_tree = tree::Tree::random(10, rng);

  core::LikelihoodEngine serial(patterns, model, serial_tree);
  const double expected = serial.log_likelihood(serial_tree.tip(0));

  for (const int ranks : {1, 2, 4}) {
    std::vector<double> values(static_cast<std::size_t>(ranks));
    mpi::World world(ranks);
    world.run([&](mpi::Communicator& comm) {
      tree::Tree tree(serial_tree);
      DistributedEvaluator evaluator(comm, patterns, model, tree);
      values[static_cast<std::size_t>(comm.rank())] = evaluator.log_likelihood(tree.tip(0));
    });
    for (const double value : values) {
      EXPECT_NEAR(value, expected, std::abs(expected) * 1e-11 + 1e-9) << "ranks=" << ranks;
    }
  }
}

TEST(DistributedEvaluator, BranchOptimizationConsistentAcrossRanks) {
  const auto alignment = test_alignment(400, 3);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(4);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree base_tree = tree::Tree::random(10, rng);

  const int ranks = 3;
  std::vector<std::vector<double>> lengths(static_cast<std::size_t>(ranks));
  mpi::World world(ranks);
  world.run([&](mpi::Communicator& comm) {
    tree::Tree tree(base_tree);
    DistributedEvaluator evaluator(comm, patterns, model, tree);
    (void)evaluator.optimize_all_branches(tree.tip(0), 2);
    auto& out = lengths[static_cast<std::size_t>(comm.rank())];
    for (int i = 0; i < tree.slot_count(); ++i) out.push_back(tree.slot(i)->length);
  });
  for (int r = 1; r < ranks; ++r) {
    ASSERT_EQ(lengths[static_cast<std::size_t>(r)].size(), lengths[0].size());
    for (std::size_t i = 0; i < lengths[0].size(); ++i) {
      // Bitwise identity: every replica ran the same Newton trajectory.
      EXPECT_EQ(lengths[static_cast<std::size_t>(r)][i], lengths[0][i]);
    }
  }
}

TEST(DistributedEvaluator, StreamGroupsPostOneCollectivePerEpochBitIdentically) {
  // ShardingPolicy::stream_groups splits a traversal into stream epochs,
  // each posting one collective over its own shard slots.  The slot layout
  // and the fixed shard-order fold never change, so the global sum is
  // bit-identical for every group count — EXPECT_EQ on doubles.
  const auto alignment = test_alignment(500, 11);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(12);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree base_tree = tree::Tree::random(10, rng);

  const int ranks = 2;
  ShardingPolicy classic;
  classic.shards_per_rank = 2;  // 4 shards in the full world
  std::vector<double> reference(static_cast<std::size_t>(ranks));
  {
    mpi::World world(ranks);
    world.run([&](mpi::Communicator& comm) {
      tree::Tree tree(base_tree);
      DistributedEvaluator evaluator(comm, patterns, model, tree, {}, classic);
      reference[static_cast<std::size_t>(comm.rank())] =
          evaluator.log_likelihood(tree.tip(0));
      EXPECT_EQ(evaluator.last_comm_plan().posts, 1);  // classic single post
    });
  }

  for (const int groups : {2, 4, 7}) {
    ShardingPolicy policy = classic;
    policy.stream_groups = groups;
    const int expected_posts = std::min(groups, ranks * classic.shards_per_rank);
    std::vector<double> values(static_cast<std::size_t>(ranks));
    std::vector<std::int64_t> collectives(static_cast<std::size_t>(ranks));
    mpi::World world(ranks);
    world.run([&](mpi::Communicator& comm) {
      const auto index = static_cast<std::size_t>(comm.rank());
      tree::Tree tree(base_tree);
      DistributedEvaluator evaluator(comm, patterns, model, tree, {}, policy);
      EXPECT_EQ(evaluator.stream_group_count(), expected_posts);
      const std::int64_t before = comm.stats().allreduces;
      values[index] = evaluator.log_likelihood(tree.tip(0));
      collectives[index] = comm.stats().allreduces - before;
      EXPECT_EQ(evaluator.last_comm_plan().posts, expected_posts);
    });
    for (int r = 0; r < ranks; ++r) {
      const auto index = static_cast<std::size_t>(r);
      EXPECT_EQ(values[index], reference[index]) << "groups=" << groups << " rank=" << r;
      EXPECT_EQ(collectives[index], expected_posts) << "groups=" << groups << " rank=" << r;
    }
  }
}

TEST(Driver, TracedSearchRecordsEveryKernelClass) {
  const auto alignment = test_alignment(500, 5);
  ExperimentOptions options;
  options.search.max_rounds = 2;
  const auto run = run_traced_search(alignment, options);

  EXPECT_GT(run.search_result.log_likelihood, -1e9);
  EXPECT_GT(run.trace.call_count(core::TraceKernel::kNewview), 50);
  EXPECT_GT(run.trace.call_count(core::TraceKernel::kEvaluate), 20);
  EXPECT_GT(run.trace.call_count(core::TraceKernel::kDerivSum), 10);
  EXPECT_GT(run.trace.call_count(core::TraceKernel::kDerivCore),
            run.trace.call_count(core::TraceKernel::kDerivSum));
  EXPECT_EQ(run.pattern_count,
            static_cast<std::int64_t>(bio::compress_patterns(alignment).pattern_count()));
  // Every recorded call spans the full pattern range (single replica).
  for (const auto& call : run.trace.calls) EXPECT_EQ(call.sites, run.pattern_count);
  EXPECT_FALSE(run.final_tree_newick.empty());
}

TEST(Driver, TracedSearchIsDeterministic) {
  const auto alignment = test_alignment(300, 6);
  ExperimentOptions options;
  options.search.max_rounds = 1;
  const auto a = run_traced_search(alignment, options);
  const auto b = run_traced_search(alignment, options);
  EXPECT_EQ(a.final_tree_newick, b.final_tree_newick);
  EXPECT_EQ(a.trace.calls.size(), b.trace.calls.size());
  EXPECT_DOUBLE_EQ(a.search_result.log_likelihood, b.search_result.log_likelihood);
}

TEST(Driver, DistributedSearchKeepsReplicasConsistent) {
  const auto alignment = test_alignment(400, 7);
  ExperimentOptions options;
  options.search.max_rounds = 1;
  options.search.model_options.max_passes = 1;

  for (const int ranks : {2, 4}) {
    const auto result = run_distributed_search(alignment, ranks, options);
    EXPECT_TRUE(result.replicas_consistent) << "ranks=" << ranks;
    EXPECT_GT(result.comm_stats.allreduces, 100);
    EXPECT_LT(result.log_likelihood, 0.0);
  }
}

TEST(Driver, DistributedSearchMatchesSerialSearch) {
  const auto alignment = test_alignment(350, 8);
  ExperimentOptions options;
  options.search.max_rounds = 1;
  options.search.optimize_model = false;

  const auto serial = run_traced_search(alignment, options);
  const auto distributed = run_distributed_search(alignment, 3, options);
  EXPECT_NEAR(distributed.log_likelihood, serial.search_result.log_likelihood,
              std::abs(serial.search_result.log_likelihood) * 1e-8 + 1e-4);
  // Same topology; branch lengths agree to rounding (the distributed Newton
  // loop sums rank partials in a different order than the serial engine,
  // so the last couple of ulps can differ).
  const auto names = alignment.taxon_names();
  tree::Tree tree_a = tree::Tree::from_newick(*io::parse_newick(serial.final_tree_newick), names);
  tree::Tree tree_b =
      tree::Tree::from_newick(*io::parse_newick(distributed.final_tree_newick), names);
  EXPECT_EQ(tree::robinson_foulds(tree_a, tree_b), 0);
}

TEST(Driver, TraceCallMixIsStableAcrossAlignmentWidths) {
  // The platform simulation extrapolates a trace from a tractable width to
  // the paper's multi-million-site widths; verify the call-count structure
  // is essentially width-independent.
  ExperimentOptions options;
  options.search.max_rounds = 2;
  const auto small = run_traced_search(test_alignment(400, 9), options);
  const auto large = run_traced_search(test_alignment(1600, 9), options);

  const auto ratio = [](const TracedRun& run, core::TraceKernel kernel) {
    return static_cast<double>(run.trace.call_count(kernel)) /
           static_cast<double>(run.trace.calls.size());
  };
  for (const auto kernel :
       {core::TraceKernel::kNewview, core::TraceKernel::kEvaluate,
        core::TraceKernel::kDerivSum, core::TraceKernel::kDerivCore}) {
    EXPECT_NEAR(ratio(small, kernel), ratio(large, kernel), 0.10)
        << "kernel mix shifted with width";
  }
}

}  // namespace
}  // namespace miniphi::examl
