// Tests for the fault-tolerance layer: deterministic fault injection in
// minimpi, abort-safe collectives (no deadlock when a rank dies), timeout
// diagnosis of genuinely mismatched collectives, message drop/delay faults,
// and checkpoint-based recovery in the ExaML driver.
//
// Several of these tests would have hung forever before the abort machinery
// existed; they run without any collective timeout precisely to prove the
// wake-up comes from the abort protocol, not from a timer.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/examl/driver.hpp"
#include "src/io/newick.hpp"
#include "src/minimpi/faults.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/search/checkpoint.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"

namespace miniphi::mpi {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(FaultPlan, BuilderValidatesAndDescribes) {
  FaultPlan plan;
  plan.kill_at_collective(2, 15).drop_message(0, 7);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.faults().size(), 2u);
  EXPECT_TRUE(contains(plan.describe(), "rank 2"));
  EXPECT_TRUE(contains(plan.describe(), "#15"));
  EXPECT_TRUE(contains(plan.describe(), "tag 7"));

  EXPECT_THROW(FaultPlan().kill_at_collective(-1, 1), Error);
  EXPECT_THROW(FaultPlan().kill_at_collective(0, 0), Error);
  EXPECT_THROW(FaultPlan().kill_in_kernel(1, -3), Error);
}

TEST(FaultPlan, RandomKillIsDeterministicInSeed) {
  const auto a = FaultPlan::random_kill(99, 8, 1000);
  const auto b = FaultPlan::random_kill(99, 8, 1000);
  const auto c = FaultPlan::random_kill(100, 8, 1000);
  ASSERT_EQ(a.faults().size(), 1u);
  EXPECT_EQ(a.faults()[0].rank, b.faults()[0].rank);
  EXPECT_EQ(a.faults()[0].at_call, b.faults()[0].at_call);
  EXPECT_GE(a.faults()[0].rank, 0);
  EXPECT_LT(a.faults()[0].rank, 8);
  EXPECT_GE(a.faults()[0].at_call, 1);
  EXPECT_LE(a.faults()[0].at_call, 1000);
  // Different seeds explore different failure points (true for these seeds).
  EXPECT_TRUE(a.faults()[0].rank != c.faults()[0].rank ||
              a.faults()[0].at_call != c.faults()[0].at_call);
}

TEST(AbortSafety, KilledRankWakesPeersBlockedInBarrier) {
  // Without the abort protocol this deadlocks: ranks 0 and 2 wait in a
  // barrier that rank 1 never reaches.  No timeout is configured — the
  // wake-up must come from the abort, not a timer.
  World world(3);
  FaultPlan plan;
  plan.kill_at_collective(1, 1);
  world.set_fault_plan(plan);

  std::array<std::string, 3> woken{};
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 if (comm.rank() == 1) {
                   comm.barrier();  // killed at entry
                   ADD_FAILURE() << "rank 1 must not survive its first collective";
                   return;
                 }
                 try {
                   comm.barrier();
                 } catch (const AbortedError& e) {
                   woken[static_cast<std::size_t>(comm.rank())] = e.what();
                   throw;
                 }
                 ADD_FAILURE() << "barrier must not complete without rank 1";
               }),
               InjectedFault);
  EXPECT_TRUE(world.aborted());
  // Both survivors were woken with the root cause, not left deadlocked.
  EXPECT_TRUE(contains(woken[0], "rank 1"));
  EXPECT_TRUE(contains(woken[2], "rank 1"));
}

TEST(AbortSafety, KilledRankWakesPeersBlockedInAllreduce) {
  World world(4);
  FaultPlan plan;
  plan.kill_at_collective(3, 5);
  world.set_fault_plan(plan);

  EXPECT_THROW(world.run([&](Communicator& comm) {
                 double total = 0.0;
                 for (int i = 0; i < 10; ++i) {
                   total += comm.allreduce_sum(static_cast<double>(comm.rank() + i));
                 }
                 (void)total;
               }),
               InjectedFault);
  EXPECT_TRUE(world.aborted());
}

TEST(AbortSafety, RecvFromDeadRankAborts) {
  World world(2);
  FaultPlan plan;
  plan.kill_at_collective(1, 1);
  world.set_fault_plan(plan);

  std::string woken;
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 if (comm.rank() == 1) {
                   comm.barrier();  // dies before ever sending
                   return;
                 }
                 try {
                   (void)comm.recv(1, /*tag=*/42);
                 } catch (const AbortedError& e) {
                   woken = e.what();
                   throw;
                 }
                 ADD_FAILURE() << "recv from a dead rank must not complete";
               }),
               InjectedFault);
  EXPECT_TRUE(contains(woken, "rank 1"));
}

TEST(AbortSafety, KernelRegionFaultUnwindsAndWakesPeers) {
  World world(3);
  FaultPlan plan;
  plan.kill_in_kernel(1, 2);
  world.set_fault_plan(plan);

  std::array<int, 3> regions_entered{};
  try {
    world.run([&](Communicator& comm) {
      for (int i = 0; i < 4; ++i) {
        comm.on_kernel_region();
        ++regions_entered[static_cast<std::size_t>(comm.rank())];
        (void)comm.allreduce_sum(1.0);
      }
    });
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_TRUE(contains(e.what(), "kernel region #2"));
  }
  EXPECT_EQ(regions_entered[1], 1);  // killed entering the second region
}

TEST(AbortSafety, MultipleThrowingRanksRethrowFirstByRankOrder) {
  World world(4);
  try {
    world.run([](Communicator& comm) {
      if (comm.rank() == 1) throw Error("boom from rank 1");
      if (comm.rank() == 3) throw Error("boom from rank 3");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom from rank 1");
  }
}

TEST(AbortSafety, RootCausePreferredOverSecondaryAbort) {
  // Rank 0 is woken from its barrier with an AbortedError (a secondary
  // casualty); run() must still rethrow rank 2's root-cause error.
  World world(3);
  try {
    world.run([](Communicator& comm) {
      if (comm.rank() == 2) throw Error("root cause in rank 2");
      comm.barrier();  // never completes; woken by the abort
    });
    FAIL() << "expected Error";
  } catch (const AbortedError&) {
    FAIL() << "secondary AbortedError must not mask the root cause";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "root cause in rank 2");
  }
}

TEST(AbortSafety, FaultsFireOnlyOncePerWorld) {
  // One-shot semantics: the recovery run over the same World models a
  // restarted replacement rank, so the same fault must not re-trigger.
  World world(2);
  FaultPlan plan;
  plan.kill_at_collective(0, 1);
  world.set_fault_plan(plan);

  EXPECT_THROW(world.run([](Communicator& comm) { comm.barrier(); }), InjectedFault);

  std::array<double, 2> sums{};
  world.run([&](Communicator& comm) {
    comm.barrier();
    sums[static_cast<std::size_t>(comm.rank())] = comm.allreduce_sum(1.0);
  });
  EXPECT_DOUBLE_EQ(sums[0], 2.0);
  EXPECT_DOUBLE_EQ(sums[1], 2.0);
  EXPECT_FALSE(world.aborted());
}

TEST(Timeout, MismatchedCollectivesDiagnosedNotDeadlocked) {
  // Rank 2 never calls the barrier — with real MPI this hangs forever; with
  // a collective timeout it becomes a DeadlockError naming the stuck ranks
  // and their collective call counts.
  World world(3);
  world.set_collective_timeout(250ms);
  try {
    world.run([](Communicator& comm) {
      if (comm.rank() != 2) comm.barrier();
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(contains(what, "collective timeout")) << what;
    EXPECT_TRUE(contains(what, "rank 2: 0 collective calls")) << what;
    EXPECT_TRUE(contains(what, "rank 0: 1 collective calls")) << what;
  }
}

TEST(Timeout, StallDiagnosisNamesCallCountsAndBlockedState) {
  // The diagnosis must separate the two ways a rank can be implicated in a
  // mismatched-collective stall: stuck INSIDE a collective (blocked) versus
  // having exited early and never arriving (not blocked).  Rank 2 completes
  // one allreduce and returns; ranks 0 and 1 then block in their second.
  World world(3);
  world.set_collective_timeout(250ms);
  try {
    world.run([](Communicator& comm) {
      (void)comm.allreduce_sum(1.0);
      if (comm.rank() != 2) (void)comm.allreduce_sum(2.0);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(contains(what, "rank 0: 2 collective calls, blocked")) << what;
    EXPECT_TRUE(contains(what, "rank 1: 2 collective calls, blocked")) << what;
    EXPECT_TRUE(contains(what, "rank 2: 1 collective calls, not blocked")) << what;
  }
}

TEST(Timeout, DroppedMessageDiagnosedOnRecv) {
  World world(2);
  world.set_collective_timeout(250ms);
  FaultPlan plan;
  plan.drop_message(/*sender=*/0, /*tag=*/7);
  world.set_fault_plan(plan);

  try {
    world.run([](Communicator& comm) {
      if (comm.rank() == 0) {
        const double payload[] = {1.0, 2.0};
        comm.send(1, 7, payload);  // lost on the wire
      } else {
        (void)comm.recv(0, 7);
        ADD_FAILURE() << "dropped message must not arrive";
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(contains(e.what(), "recv timeout")) << e.what();
    // The diagnosis names both ends of the missing message — who is stuck
    // waiting and who never delivered — plus the tag.
    EXPECT_TRUE(contains(e.what(), "rank 1 waiting for message from rank 0")) << e.what();
    EXPECT_TRUE(contains(e.what(), "tag 7")) << e.what();
  }
}

TEST(Timeout, RecvHonorsCollectiveTimeoutWithoutFaultPlan) {
  // Satellite check: p2p recv respects the collective timeout even when no
  // fault plan is installed — a sender that simply never sends becomes a
  // diagnosed DeadlockError naming sender and receiver, not a hang.
  World world(2);
  world.set_collective_timeout(250ms);
  try {
    world.run([](Communicator& comm) {
      if (comm.rank() == 1) (void)comm.recv(0, /*tag=*/9);  // never sent
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(contains(e.what(), "recv timeout")) << e.what();
    EXPECT_TRUE(contains(e.what(), "rank 1 waiting for message from rank 0")) << e.what();
    EXPECT_TRUE(contains(e.what(), "tag 9")) << e.what();
  }
}

TEST(FaultPlan, SetFaultPlanValidatesTargetsAgainstWorldSize) {
  // A plan aimed at a rank the world does not have is a test-author bug;
  // it must fail loudly at configuration time, not silently never fire.
  World world(2);
  FaultPlan plan;
  plan.kill_at_collective(2, 1);
  try {
    world.set_fault_plan(plan);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_TRUE(contains(e.what(), "targets rank 2")) << e.what();
    EXPECT_TRUE(contains(e.what(), "2 ranks")) << e.what();
  }
  // In-range targets (and 'any sender' message faults) are accepted.
  FaultPlan good;
  good.kill_in_kernel(1, 3).drop_message(-1, 7);
  EXPECT_NO_THROW(world.set_fault_plan(good));
}

TEST(MessageFaults, DelayedMessageArrivesLateButIntact) {
  World world(2);
  FaultPlan plan;
  plan.delay_message(/*sender=*/0, /*tag=*/1);
  world.set_fault_plan(plan);

  std::vector<double> delayed_payload;
  std::vector<double> prompt_payload;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      const double a[] = {1.5, 2.5};
      const double b[] = {9.0};
      comm.send(1, /*tag=*/1, a);  // withheld by the plan
      comm.send(1, /*tag=*/2, b);  // delivered normally
    } else {
      prompt_payload = comm.recv(0, 2);   // arrives although sent second
      delayed_payload = comm.recv(0, 1);  // released once the receiver waits
    }
  });
  ASSERT_EQ(prompt_payload.size(), 1u);
  EXPECT_DOUBLE_EQ(prompt_payload[0], 9.0);
  ASSERT_EQ(delayed_payload.size(), 2u);
  EXPECT_DOUBLE_EQ(delayed_payload[0], 1.5);
  EXPECT_DOUBLE_EQ(delayed_payload[1], 2.5);
}

}  // namespace
}  // namespace miniphi::mpi

namespace miniphi::examl {
namespace {

using namespace std::chrono_literals;

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

tree::Tree tree_from_newick(const std::string& newick, const std::vector<std::string>& names) {
  return tree::Tree::from_newick(*io::parse_newick(newick), names);
}

/// Per-rank collective count of a fault-free run (replicas make identical
/// call sequences, so the aggregate divides evenly).
std::int64_t per_rank_collectives(const DistributedRunResult& result, int ranks) {
  return (result.comm_stats.allreduces + result.comm_stats.broadcasts +
          result.comm_stats.barriers) /
         ranks;
}

TEST(Recovery, FaultInjectedSearchMatchesFaultFreeRun) {
  const auto alignment = simulate::paper_dataset(400, 21, 10);
  const int ranks = 3;
  ExperimentOptions options;
  options.search.max_rounds = 3;
  options.search.model_options.max_passes = 1;

  const auto reference = run_distributed_search(alignment, ranks, options);
  ASSERT_EQ(reference.recoveries, 0);
  ASSERT_TRUE(reference.replicas_consistent);

  // Kill rank 1 three quarters of the way through its collective sequence —
  // well after the first round's checkpoint.
  ExperimentOptions faulty = options;
  faulty.fault_tolerance.faults.kill_at_collective(
      1, (3 * per_rank_collectives(reference, ranks)) / 4);
  faulty.fault_tolerance.checkpoint_every_rounds = 1;
  const auto recovered = run_distributed_search(alignment, ranks, faulty);

  EXPECT_GE(recovered.recoveries, 1);
  EXPECT_TRUE(contains(recovered.last_failure, "injected fault")) << recovered.last_failure;
  EXPECT_TRUE(recovered.replicas_consistent);

  // The acceptance property: identical final topology and log-likelihood.
  const auto names = alignment.taxon_names();
  tree::Tree tree_ref = tree_from_newick(reference.final_tree_newick, names);
  tree::Tree tree_rec = tree_from_newick(recovered.final_tree_newick, names);
  EXPECT_EQ(tree::robinson_foulds(tree_ref, tree_rec), 0);
  EXPECT_NEAR(recovered.log_likelihood, reference.log_likelihood,
              std::abs(reference.log_likelihood) * 1e-8 + 1e-4);
}

TEST(Recovery, KernelRegionFaultRecoversThroughDurableCheckpoint) {
  const auto alignment = simulate::paper_dataset(300, 22, 10);
  const int ranks = 2;
  ExperimentOptions options;
  options.search.max_rounds = 3;
  options.search.optimize_model = false;

  const auto reference = run_distributed_search(alignment, ranks, options);
  ASSERT_EQ(reference.recoveries, 0);

  // Every kernel region issues exactly one Allreduce, so the per-rank
  // Allreduce count locates a kernel call ~75% into the run.
  const std::int64_t kernel_call = (3 * (reference.comm_stats.allreduces / ranks)) / 4;

  const std::string path = "/tmp/miniphi_faults_recovery.ckp";
  std::remove(path.c_str());

  ExperimentOptions faulty = options;
  faulty.fault_tolerance.faults.kill_in_kernel(1, kernel_call);
  faulty.fault_tolerance.checkpoint_every_rounds = 1;
  faulty.fault_tolerance.checkpoint_path = path;
  faulty.fault_tolerance.collective_timeout = 10s;  // belt and braces: never hang the suite
  const auto recovered = run_distributed_search(alignment, ranks, faulty);

  EXPECT_GE(recovered.recoveries, 1);
  EXPECT_TRUE(contains(recovered.last_failure, "kernel region")) << recovered.last_failure;

  const auto names = alignment.taxon_names();
  tree::Tree tree_ref = tree_from_newick(reference.final_tree_newick, names);
  tree::Tree tree_rec = tree_from_newick(recovered.final_tree_newick, names);
  EXPECT_EQ(tree::robinson_foulds(tree_ref, tree_rec), 0);
  EXPECT_NEAR(recovered.log_likelihood, reference.log_likelihood,
              std::abs(reference.log_likelihood) * 1e-8 + 1e-4);

  // The durable checkpoint survived and is readable (checksum intact).
  const auto checkpoint = search::read_checkpoint_file(path);
  EXPECT_GE(checkpoint.rounds_completed, 1);
  EXPECT_EQ(checkpoint.taxon_names, names);
  std::remove(path.c_str());
}

TEST(Recovery, GivesUpAfterMaxRecoveries) {
  const auto alignment = simulate::paper_dataset(200, 23, 8);
  ExperimentOptions options;
  options.search.max_rounds = 1;
  options.search.optimize_model = false;
  // Three separate kills with max_recoveries = 1: the second fault fires in
  // the recovery run and must be rethrown, not silently retried forever.
  options.fault_tolerance.faults.kill_at_collective(0, 3).kill_at_collective(1, 5);
  options.fault_tolerance.max_recoveries = 1;
  EXPECT_THROW(run_distributed_search(alignment, 2, options), mpi::InjectedFault);
}

}  // namespace
}  // namespace miniphi::examl
