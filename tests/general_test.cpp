// Tests for the general-state-count path (protein support): the
// GeneralModel, amino-acid encoding, protein alignments, the general
// kernels/engine (cross-validated against both the DNA fast path and an
// independent brute-force implementation), and protein tree search.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "src/bio/aa.hpp"
#include "src/bio/protein_alignment.hpp"
#include "src/core/general/general_engine.hpp"
#include "src/model/general.hpp"
#include "src/search/model_optimizer.hpp"
#include "src/search/spr_search.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/parsimony.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi {
namespace {

using core::GeneralEngine;
using model::GeneralModel;

/// Random reversible general model with S states.
GeneralModel random_general_model(int states, Rng& rng) {
  const auto pairs =
      static_cast<std::size_t>(states) * (static_cast<std::size_t>(states) - 1) / 2;
  std::vector<double> exchangeabilities(pairs);
  for (auto& rate : exchangeabilities) rate = rng.uniform(0.3, 3.0);
  std::vector<double> freqs(static_cast<std::size_t>(states));
  double sum = 0.0;
  for (auto& f : freqs) {
    f = rng.uniform(0.2, 1.0);
    sum += f;
  }
  for (auto& f : freqs) f /= sum;
  return GeneralModel(states, std::move(exchangeabilities), std::move(freqs),
                      rng.uniform(0.3, 2.0));
}

/// Random protein pattern set (dense codes incl. ambiguity classes).
bio::PatternSet random_protein_patterns(int ntaxa, int nsites, Rng& rng,
                                        double ambiguity_fraction = 0.05) {
  std::vector<std::string> names;
  std::vector<std::vector<bio::AaCode>> rows;
  for (int t = 0; t < ntaxa; ++t) {
    names.push_back("t" + std::to_string(t));
    std::vector<bio::AaCode> row(static_cast<std::size_t>(nsites));
    for (auto& code : row) {
      if (rng.uniform() < ambiguity_fraction) {
        code = static_cast<bio::AaCode>(bio::kAaStates + rng.below(3));
      } else {
        code = static_cast<bio::AaCode>(rng.below(bio::kAaStates));
      }
    }
    rows.push_back(std::move(row));
  }
  return bio::compress_protein_patterns(bio::ProteinAlignment(std::move(names), std::move(rows)));
}

/// Brute-force Felsenstein likelihood for an arbitrary-state model, in
/// probability space — independent of the eigenspace kernels.
double general_brute_force(const tree::Tree& tree, const bio::PatternSet& patterns,
                           const GeneralModel& model,
                           const std::vector<std::uint32_t>& masks) {
  const int states = model.states();
  const std::size_t npat = patterns.pattern_count();
  const auto& rates = model.gamma_rates();
  using Cond = std::vector<std::vector<double>>;  // [pattern][rate*states + i]

  const std::function<Cond(const tree::Slot*)> down = [&](const tree::Slot* slot) -> Cond {
    Cond out(npat, std::vector<double>(static_cast<std::size_t>(4 * states), 0.0));
    if (slot->is_tip()) {
      const auto& codes = patterns.tip_rows[static_cast<std::size_t>(slot->node_id)];
      for (std::size_t s = 0; s < npat; ++s) {
        for (int c = 0; c < 4; ++c) {
          for (int i = 0; i < states; ++i) {
            if (masks[codes[s]] & (1u << i)) {
              out[s][static_cast<std::size_t>(c * states + i)] = 1.0;
            }
          }
        }
      }
      return out;
    }
    const Cond left = down(slot->child1());
    const Cond right = down(slot->child2());
    for (int c = 0; c < 4; ++c) {
      const auto p1 =
          model.transition_matrix(slot->next->length, rates[static_cast<std::size_t>(c)]);
      const auto p2 = model.transition_matrix(slot->next->next->length,
                                              rates[static_cast<std::size_t>(c)]);
      for (std::size_t s = 0; s < npat; ++s) {
        for (int i = 0; i < states; ++i) {
          double a = 0.0;
          double b = 0.0;
          for (int j = 0; j < states; ++j) {
            a += p1(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
                 left[s][static_cast<std::size_t>(c * states + j)];
            b += p2(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
                 right[s][static_cast<std::size_t>(c * states + j)];
          }
          out[s][static_cast<std::size_t>(c * states + i)] = a * b;
        }
      }
    }
    return out;
  };

  const tree::Slot* root = tree.tip(0);
  const Cond below = down(root->back);
  const auto& codes = patterns.tip_rows[0];
  const auto& pi = model.frequencies();
  double total = 0.0;
  for (std::size_t s = 0; s < npat; ++s) {
    double site = 0.0;
    for (int c = 0; c < 4; ++c) {
      const auto p = model.transition_matrix(root->length, rates[static_cast<std::size_t>(c)]);
      for (int i = 0; i < states; ++i) {
        if (!(masks[codes[s]] & (1u << i))) continue;
        double inner = 0.0;
        for (int j = 0; j < states; ++j) {
          inner += p(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
                   below[s][static_cast<std::size_t>(c * states + j)];
        }
        site += 0.25 * pi[static_cast<std::size_t>(i)] * inner;
      }
    }
    total += patterns.weights[s] * std::log(site);
  }
  return total;
}

// ----------------------------------------------------------- GeneralModel --

class GeneralModelInvariants : public ::testing::TestWithParam<int> {};

TEST_P(GeneralModelInvariants, RateMatrixAndTransitions) {
  const int states = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(states));
  const auto model = random_general_model(states, rng);

  const auto q = model.rate_matrix();
  const auto& pi = model.frequencies();
  double mu = 0.0;
  for (int i = 0; i < states; ++i) {
    double row = 0.0;
    for (int j = 0; j < states; ++j) {
      row += q(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      // Detailed balance.
      EXPECT_NEAR(pi[static_cast<std::size_t>(i)] *
                      q(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
                  pi[static_cast<std::size_t>(j)] *
                      q(static_cast<std::size_t>(j), static_cast<std::size_t>(i)),
                  1e-10);
    }
    EXPECT_NEAR(row, 0.0, 1e-9);
    mu -= pi[static_cast<std::size_t>(i)] * q(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  }
  EXPECT_NEAR(mu, 1.0, 1e-9);

  // Stochastic transition matrices + Chapman-Kolmogorov.
  const auto p1 = model.transition_matrix(0.3);
  const auto p2 = model.transition_matrix(0.5);
  const auto p3 = model.transition_matrix(0.8);
  for (int i = 0; i < states; ++i) {
    double row = 0.0;
    for (int j = 0; j < states; ++j) {
      const double value = p1(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      EXPECT_GE(value, 0.0);
      row += value;
      double ck = 0.0;
      for (int k = 0; k < states; ++k) {
        ck += p1(static_cast<std::size_t>(i), static_cast<std::size_t>(k)) *
              p2(static_cast<std::size_t>(k), static_cast<std::size_t>(j));
      }
      EXPECT_NEAR(ck, p3(static_cast<std::size_t>(i), static_cast<std::size_t>(j)), 1e-9);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(States, GeneralModelInvariants, ::testing::Values(2, 4, 5, 20));

TEST(GeneralModel, MatchesGtrModelForDna) {
  Rng rng(7);
  const auto params = testutil::random_gtr_params(rng);
  const model::GtrModel dna(params);
  // GtrModel's AC,AG,AT,CG,CT,GT order IS upper-triangle row-major.
  const GeneralModel general(
      4, std::vector<double>(params.exchangeabilities.begin(), params.exchangeabilities.end()),
      std::vector<double>(params.frequencies.begin(), params.frequencies.end()), params.alpha);
  for (const double t : {0.05, 0.3, 1.2}) {
    const auto pd = dna.transition_matrix(t, 1.3);
    const auto pg = general.transition_matrix(t, 1.3);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(pd[static_cast<std::size_t>(i * 4 + j)],
                    pg(static_cast<std::size_t>(i), static_cast<std::size_t>(j)), 1e-10);
      }
    }
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(dna.gamma_rates()[static_cast<std::size_t>(c)],
                general.gamma_rates()[static_cast<std::size_t>(c)], 1e-12);
  }
}

TEST(GeneralModel, PamlRoundTrip) {
  // A 4-state PAML file (lower triangle by rows, then frequencies).
  std::istringstream paml(
      "1.5\n"
      "2.0 0.5\n"
      "0.8 1.2 3.0\n"
      "0.1 0.2 0.3 0.4\n");
  const auto model = GeneralModel::from_paml(paml, 4, 0.7);
  EXPECT_EQ(model.states(), 4);
  // Upper-triangle order: (0,1)=1.5 (0,2)=2.0 (0,3)=0.8 (1,2)=0.5 (1,3)=1.2 (2,3)=3.0.
  const auto& ex = model.exchangeabilities();
  EXPECT_DOUBLE_EQ(ex[0], 1.5);
  EXPECT_DOUBLE_EQ(ex[1], 2.0);
  EXPECT_DOUBLE_EQ(ex[2], 0.8);
  EXPECT_DOUBLE_EQ(ex[3], 0.5);
  EXPECT_DOUBLE_EQ(ex[4], 1.2);
  EXPECT_DOUBLE_EQ(ex[5], 3.0);
  EXPECT_DOUBLE_EQ(model.frequencies()[3], 0.4);

  std::istringstream truncated("1.0 2.0\n");
  EXPECT_THROW(GeneralModel::from_paml(truncated, 4), Error);
}

TEST(GeneralModel, PoissonIsUniform) {
  const auto model = GeneralModel::poisson(20, 1.0);
  EXPECT_EQ(model.states(), 20);
  EXPECT_EQ(model.padded_states(), 24);
  const auto p = model.transition_matrix(0.5);
  // All off-diagonal entries identical under Poisson.
  const double off = p(0, 1);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (i != j) {
        EXPECT_NEAR(p(static_cast<std::size_t>(i), static_cast<std::size_t>(j)), off, 1e-10);
      }
    }
  }
}

TEST(GeneralModel, WithAlphaChangesOnlyGammaRates) {
  Rng rng(9);
  const auto base = random_general_model(5, rng);
  const auto changed = base.with_alpha(2.5);
  EXPECT_DOUBLE_EQ(changed.alpha(), 2.5);
  EXPECT_NE(base.gamma_rates()[0], changed.gamma_rates()[0]);
  const auto pb = base.transition_matrix(0.4);
  const auto pc = changed.transition_matrix(0.4);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(pb(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
                       pc(static_cast<std::size_t>(i), static_cast<std::size_t>(j)));
    }
  }
}

// ------------------------------------------------------------ AA encoding --

TEST(AminoAcids, EncodeDecodeRoundTrip) {
  for (int i = 0; i < bio::kAaStates; ++i) {
    const char c = bio::kAaLetters[i];
    EXPECT_EQ(bio::encode_aa(c), i);
    EXPECT_EQ(bio::encode_aa(static_cast<char>(c - 'A' + 'a')), i);
    EXPECT_EQ(bio::decode_aa(static_cast<bio::AaCode>(i)), c);
  }
  EXPECT_EQ(bio::encode_aa('B'), bio::kAaB);
  EXPECT_EQ(bio::encode_aa('Z'), bio::kAaZ);
  EXPECT_EQ(bio::encode_aa('X'), bio::kAaGap);
  EXPECT_EQ(bio::encode_aa('-'), bio::kAaGap);
  EXPECT_THROW(bio::encode_aa('J'), Error);
  EXPECT_THROW(bio::encode_aa('1'), Error);
  EXPECT_FALSE(bio::is_valid_aa('O'));
}

TEST(AminoAcids, MasksEncodeAmbiguityClasses) {
  const auto masks = bio::aa_code_masks();
  ASSERT_EQ(masks.size(), static_cast<std::size_t>(bio::kAaCodeCount));
  for (int i = 0; i < bio::kAaStates; ++i) {
    EXPECT_EQ(masks[static_cast<std::size_t>(i)], 1u << i);
  }
  EXPECT_EQ(__builtin_popcount(masks[bio::kAaB]), 2);  // N or D
  EXPECT_EQ(__builtin_popcount(masks[bio::kAaZ]), 2);  // Q or E
  EXPECT_EQ(__builtin_popcount(masks[bio::kAaGap]), 20);
  // B covers exactly N and D.
  EXPECT_TRUE(masks[bio::kAaB] & (1u << bio::encode_aa('N')));
  EXPECT_TRUE(masks[bio::kAaB] & (1u << bio::encode_aa('D')));
}

TEST(ProteinAlignment, BuildsAndCompresses) {
  io::SequenceSet records = {{"a", "ARND-XARND"}, {"b", "ARNDCQARND"}, {"c", "ARNDBZARND"}};
  bio::ProteinAlignment alignment(records);
  EXPECT_EQ(alignment.taxon_count(), 3u);
  EXPECT_EQ(alignment.site_count(), 10u);
  const auto patterns = bio::compress_protein_patterns(alignment);
  EXPECT_EQ(patterns.total_sites(), 10u);
  EXPECT_LT(patterns.pattern_count(), 10u);  // "ARND" repeats
  const auto back = alignment.to_records();
  EXPECT_EQ(back[0].sequence, "ARND--ARND");  // X reads back as gap class
  const auto freqs = alignment.empirical_frequencies();
  double sum = 0.0;
  for (const double f : freqs) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_THROW(bio::ProteinAlignment(io::SequenceSet{{"a", "AR"}, {"b", "A"}, {"c", "AR"}}),
               Error);
}

// --------------------------------------------------------- GeneralEngine --

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::isa_supported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::isa_supported(simd::Isa::kAvx512)) isas.push_back(simd::Isa::kAvx512);
  return isas;
}

TEST(GeneralEngine, DnaCrossValidationAgainstFastPath) {
  // The general engine with S = 4 and DNA masks must agree with the
  // dedicated DNA engine to machine precision.
  Rng rng(21);
  const auto alignment = testutil::random_alignment(10, 250, rng, 0.08);
  const auto patterns = bio::compress_patterns(alignment);
  const auto params = testutil::random_gtr_params(rng);
  const model::GtrModel dna_model(params);
  const GeneralModel general_model(
      4, std::vector<double>(params.exchangeabilities.begin(), params.exchangeabilities.end()),
      std::vector<double>(params.frequencies.begin(), params.frequencies.end()), params.alpha);
  tree::Tree tree = tree::Tree::random(10, rng);

  core::LikelihoodEngine dna_engine(patterns, dna_model, tree);
  const double expected = dna_engine.log_likelihood(tree.tip(0));

  for (const auto isa : supported_isas()) {
    GeneralEngine::Config config;
    config.isa = isa;
    GeneralEngine engine(patterns, general_model, tree, bio::dna_code_masks(), config);
    const double actual = engine.log_likelihood(tree.tip(0));
    EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-10 + 1e-8)
        << simd::to_string(isa);
  }
}

TEST(GeneralEngine, ProteinMatchesBruteForce) {
  Rng rng(22);
  const auto patterns = random_protein_patterns(6, 60, rng);
  const auto model = random_general_model(20, rng);
  tree::Tree tree = tree::Tree::random(6, rng);
  const auto masks = bio::aa_code_masks();

  const double reference = general_brute_force(tree, patterns, model, masks);
  for (const auto isa : supported_isas()) {
    GeneralEngine::Config config;
    config.isa = isa;
    GeneralEngine engine(patterns, model, tree, masks, config);
    const double actual = engine.log_likelihood(tree.tip(0));
    EXPECT_NEAR(actual, reference, std::abs(reference) * 1e-10 + 1e-8)
        << simd::to_string(isa);
  }
}

TEST(GeneralEngine, FiveStateOddModelMatchesBruteForce) {
  // S = 5 → padded 8: exercises padding lanes specifically.
  Rng rng(23);
  const int states = 5;
  const auto model = random_general_model(states, rng);
  std::vector<std::uint32_t> masks(static_cast<std::size_t>(states) + 1);
  for (int i = 0; i < states; ++i) masks[static_cast<std::size_t>(i)] = 1u << i;
  masks[static_cast<std::size_t>(states)] = (1u << states) - 1;  // gap code

  bio::PatternSet patterns;
  const int ntaxa = 7;
  const int npat = 40;
  patterns.tip_rows.assign(ntaxa, {});
  for (int t = 0; t < ntaxa; ++t) {
    for (int s = 0; s < npat; ++s) {
      patterns.tip_rows[static_cast<std::size_t>(t)].push_back(
          static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(states) + 1)));
    }
  }
  patterns.weights.assign(npat, 1);
  for (int s = 0; s < npat; ++s) {
    patterns.site_to_pattern.push_back(static_cast<std::uint32_t>(s));
  }

  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  const double reference = general_brute_force(tree, patterns, model, masks);
  for (const auto isa : supported_isas()) {
    GeneralEngine::Config config;
    config.isa = isa;
    GeneralEngine engine(patterns, model, tree, masks, config);
    EXPECT_NEAR(engine.log_likelihood(tree.tip(0)), reference,
                std::abs(reference) * 1e-10 + 1e-8)
        << simd::to_string(isa);
  }
}

TEST(GeneralEngine, VirtualRootInvarianceProtein) {
  Rng rng(24);
  const auto patterns = random_protein_patterns(8, 50, rng);
  const auto model = GeneralModel::poisson(20, 0.8);
  tree::Tree tree = tree::Tree::random(8, rng);
  GeneralEngine engine(patterns, model, tree, bio::aa_code_masks());
  const double reference = engine.log_likelihood(tree.tip(0));
  for (tree::Slot* edge : tree.edges()) {
    EXPECT_NEAR(engine.log_likelihood(edge), reference, std::abs(reference) * 1e-11 + 1e-9);
  }
}

TEST(GeneralEngine, DerivativesMatchFiniteDifferences) {
  Rng rng(25);
  const auto patterns = random_protein_patterns(6, 40, rng);
  const auto model = random_general_model(20, rng);
  tree::Tree tree = tree::Tree::random(6, rng);
  GeneralEngine engine(patterns, model, tree, bio::aa_code_masks());

  tree::Slot* edge = tree.tip(2);
  engine.prepare_derivatives(edge);
  const double z = edge->length;
  const auto [first, second] = engine.derivatives(z);

  const double h = 1e-6;
  const auto eval_at = [&](double value) {
    tree::Tree::set_length(edge, value);
    const double result = engine.log_likelihood(edge);
    tree::Tree::set_length(edge, z);
    return result;
  };
  EXPECT_NEAR(first, (eval_at(z + h) - eval_at(z - h)) / (2 * h),
              1e-3 * (1.0 + std::abs(first)));
  const double h2 = 1e-4;
  EXPECT_NEAR(second,
              (eval_at(z + h2) - 2 * eval_at(z) + eval_at(z - h2)) / (h2 * h2),
              2e-2 * (1.0 + std::abs(second)));
}

TEST(GeneralEngine, ScalingOnDeepProteinTrees) {
  Rng rng(26);
  const int ntaxa = 300;
  const auto patterns = random_protein_patterns(ntaxa, 4, rng, 0.0);
  const auto model = GeneralModel::poisson(20, 1.0);
  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  GeneralEngine engine(patterns, model, tree, bio::aa_code_masks());
  const double value = engine.log_likelihood(tree.tip(0));
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_LT(value, 0.0);
}

TEST(GeneralEngine, AlphaOptimizationViaEvaluatorInterface) {
  Rng rng(27);
  tree::Tree true_tree = simulate::yule_tree(8, rng, 0.8);
  const auto true_model = GeneralModel::poisson(20, 0.5);
  const auto alignment = simulate::simulate_protein_alignment(true_tree, true_model, 800, rng);
  const auto patterns = bio::compress_protein_patterns(alignment);

  tree::Tree tree(true_tree);
  GeneralEngine engine(patterns, GeneralModel::poisson(20, 3.0), tree, bio::aa_code_masks());
  (void)engine.optimize_all_branches(tree.tip(0), 3);
  const auto result = search::optimize_alpha(engine, tree.tip(0));
  EXPECT_GT(result.evaluations, 3);
  EXPECT_GT(engine.alpha(), 0.25);
  EXPECT_LT(engine.alpha(), 1.2);
}

TEST(GeneralEngine, ProteinTreeSearchRecoversTopology) {
  // End-to-end: SPR search over the Evaluator interface on protein data.
  Rng rng(28);
  tree::Tree true_tree = simulate::yule_tree(7, rng, 0.8);
  const auto model = GeneralModel::poisson(20, 1.0);
  const auto alignment = simulate::simulate_protein_alignment(true_tree, model, 1200, rng);
  const auto patterns = bio::compress_protein_patterns(alignment);

  tree::Tree tree = tree::Tree::random(7, rng);
  GeneralEngine engine(patterns, model, tree, bio::aa_code_masks());
  search::SearchOptions options;
  options.optimize_model = false;
  const auto result = search::run_tree_search(engine, tree, options);
  EXPECT_LT(result.log_likelihood, 0.0);

  // The searched tree must match the generating topology or at least reach
  // the true tree's (branch-optimized) likelihood — on finite data the ML
  // tree can legitimately differ from the truth by a short branch.
  tree::Tree reference(true_tree);
  GeneralEngine reference_engine(patterns, model, reference, bio::aa_code_masks());
  const double reference_lnl = reference_engine.optimize_all_branches(reference.tip(0), 8);
  EXPECT_LE(tree::robinson_foulds(tree, true_tree), 2);
  EXPECT_GE(result.log_likelihood, reference_lnl - 0.1);
}

TEST(GeneralEngine, OpenMpHybridModeMatchesSerial) {
  // The ExaML-MIC hybrid scheme (Section V-D) applied to the protein path.
  Rng rng(41);
  const auto patterns = random_protein_patterns(8, 300, rng);
  const auto model = random_general_model(20, rng);
  tree::Tree tree = tree::Tree::random(8, rng);

  GeneralEngine serial(patterns, model, tree, bio::aa_code_masks());
  GeneralEngine::Config parallel_config;
  parallel_config.use_openmp = true;
  GeneralEngine parallel(patterns, model, tree, bio::aa_code_masks(), parallel_config);

  const double a = serial.log_likelihood(tree.tip(0));
  const double b = parallel.log_likelihood(tree.tip(0));
  EXPECT_NEAR(a, b, std::abs(a) * 1e-11 + 1e-9);

  tree::Slot* edge = tree.tip(2);
  serial.prepare_derivatives(edge);
  parallel.prepare_derivatives(edge);
  const auto [s1, s2] = serial.derivatives(edge->length);
  const auto [p1, p2] = parallel.derivatives(edge->length);
  EXPECT_NEAR(s1, p1, std::abs(s1) * 1e-10 + 1e-8);
  EXPECT_NEAR(s2, p2, std::abs(s2) * 1e-10 + 1e-8);
}

TEST(GeneralEngine, RejectsGeometryErrors) {
  Rng rng(29);
  const auto patterns = random_protein_patterns(4, 10, rng);
  const auto model = random_general_model(20, rng);
  tree::Tree tree = tree::Tree::random(4, rng);
  // Mask table too small for the codes present.
  EXPECT_THROW(GeneralEngine(patterns, model, tree, std::vector<std::uint32_t>(3, 1u)), Error);
  // Mask referencing nonexistent states.
  auto bad_masks = bio::aa_code_masks();
  bad_masks[0] = 1u << 25;
  EXPECT_THROW(GeneralEngine(patterns, model, tree, bad_masks), Error);
}

TEST(GeneralSimulator, ProteinCompositionMatchesFrequencies) {
  Rng rng(30);
  tree::Tree tree = simulate::yule_tree(10, rng, 0.5);
  auto model = random_general_model(20, rng);
  const auto alignment = simulate::simulate_protein_alignment(tree, model, 20000, rng);
  const auto freqs = alignment.empirical_frequencies();
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(freqs[static_cast<std::size_t>(i)],
                model.frequencies()[static_cast<std::size_t>(i)], 0.02)
        << "state " << i;
  }
}

}  // namespace
}  // namespace miniphi
