// Correctness of the O(N) all-branch gradient (postorder + preorder two-pass
// sweep) and of the branch-optimizer safeguards that ride on it:
//
//  * every gradient entry matches the classic per-branch derivative protocol
//    (prepare_derivatives + derivatives) analytically, per ISA, with the
//    site-repeats path on and off;
//  * first derivatives match central finite differences of log_likelihood;
//  * deep trees exercise the scaling path of the preorder partials;
//  * optimize_all_branches returns the log-likelihood of the tree it leaves
//    behind, and optimize_branch never commits an uphill-in-z,
//    downhill-in-lnL Newton iterate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/bio/aa.hpp"
#include "src/core/cat/cat_engine.hpp"
#include "src/core/engine.hpp"
#include "src/core/general/general_engine.hpp"
#include "src/core/partitioned.hpp"
#include "src/search/spr_search.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

using testutil::random_alignment;
using testutil::random_gtr_params;

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::isa_supported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::isa_supported(simd::Isa::kAvx512)) isas.push_back(simd::Isa::kAvx512);
  return isas;
}

struct GradientCase {
  simd::Isa isa = simd::Isa::kScalar;
  bool site_repeats = false;
};

std::vector<GradientCase> gradient_cases() {
  std::vector<GradientCase> cases;
  for (const auto isa : supported_isas()) {
    cases.push_back({isa, false});
    cases.push_back({isa, true});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<GradientCase>& info) {
  return simd::to_string(info.param.isa) +
         std::string(info.param.site_repeats ? "_repeats" : "_dense");
}

class AllBranchGradient : public ::testing::TestWithParam<GradientCase> {
 protected:
  void SetUp() override {
    if (!simd::isa_supported(GetParam().isa)) GTEST_SKIP() << "ISA unsupported";
  }
};

// The strongest check: the sweep's per-edge (ℓ', ℓ'') must agree with the
// classic two-endpoint derivative protocol on the *same* edge.  Both sides
// are analytic, so the tolerance is pure round-off.
TEST_P(AllBranchGradient, MatchesPerBranchDerivativeProtocol) {
  Rng rng(4101);
  const int ntaxa = 12;
  const auto alignment = random_alignment(ntaxa, 300, rng, /*ambiguity=*/0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam().isa;
  config.site_repeats = GetParam().site_repeats;
  LikelihoodEngine engine(patterns, model, tree, config);

  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(tree.tip(0), gradient));
  ASSERT_EQ(gradient.size(), static_cast<std::size_t>(tree.edge_count()));

  for (const BranchGradient& g : gradient) {
    engine.prepare_derivatives(g.edge);
    const auto [first, second] = engine.derivatives(g.edge->length);
    const double ftol = std::abs(first) * 1e-8 + 1e-7;
    const double stol = std::abs(second) * 1e-8 + 1e-7;
    EXPECT_NEAR(g.first, first, ftol) << "edge node " << g.edge->node_id;
    EXPECT_NEAR(g.second, second, stol) << "edge node " << g.edge->node_id;
  }
}

// First derivatives against central differences of the actual log-likelihood.
// h = 1e-4 keeps the FD truncation+cancellation noise near 1e-8 in absolute
// terms; branches are reset into [0.05, 1.0] so ℓ' stays O(1)-ish and the
// 1e-6 relative bound is meaningful.
TEST_P(AllBranchGradient, FirstDerivativeMatchesCentralDifferences) {
  Rng rng(977);
  const int ntaxa = 10;
  const auto alignment = random_alignment(ntaxa, 240, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  for (tree::Slot* edge : tree.edges()) {
    tree::Tree::set_length(edge, rng.uniform(0.05, 1.0));
  }

  LikelihoodEngine::Config config;
  config.isa = GetParam().isa;
  config.site_repeats = GetParam().site_repeats;
  LikelihoodEngine engine(patterns, model, tree, config);
  tree::Slot* root = tree.tip(0);

  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(root, gradient));

  const double h = 1e-4;
  for (const BranchGradient& g : gradient) {
    const double z = g.length;
    tree::Tree::set_length(g.edge, z + h);
    engine.invalidate_branch(g.edge->node_id);
    engine.invalidate_branch(g.edge->back->node_id);
    const double up = engine.log_likelihood(root);
    tree::Tree::set_length(g.edge, z - h);
    engine.invalidate_branch(g.edge->node_id);
    engine.invalidate_branch(g.edge->back->node_id);
    const double down = engine.log_likelihood(root);
    tree::Tree::set_length(g.edge, z);
    engine.invalidate_branch(g.edge->node_id);
    engine.invalidate_branch(g.edge->back->node_id);

    const double fd = (up - down) / (2.0 * h);
    EXPECT_NEAR(g.first, fd, std::abs(fd) * 1e-6 + 1e-6)
        << "edge node " << g.edge->node_id << " z=" << z;
  }
}

// Tiny branches (Newton's domain boundary) and a deep tree whose preorder
// partials must go through the 2^256 rescaling path.  FD is useless at both
// extremes, so compare against the per-branch analytic protocol.
TEST_P(AllBranchGradient, TinyBranchesAndDeepScaling) {
  Rng rng(5511);
  const int ntaxa = 300;  // deep enough that scaling fires in both passes
  const auto alignment = random_alignment(ntaxa, 40, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  // A few branches pinned to the domain floor.
  int pinned = 0;
  for (tree::Slot* edge : tree.edges()) {
    if (pinned < 8) {
      tree::Tree::set_length(edge, 1e-7);
      ++pinned;
    }
  }

  LikelihoodEngine::Config config;
  config.isa = GetParam().isa;
  config.site_repeats = GetParam().site_repeats;
  LikelihoodEngine engine(patterns, model, tree, config);

  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(tree.tip(0), gradient));
  ASSERT_EQ(gradient.size(), static_cast<std::size_t>(tree.edge_count()));

  for (const BranchGradient& g : gradient) {
    ASSERT_TRUE(std::isfinite(g.first) && std::isfinite(g.second))
        << "edge node " << g.edge->node_id;
    engine.prepare_derivatives(g.edge);
    const auto [first, second] = engine.derivatives(g.edge->length);
    EXPECT_NEAR(g.first, first, std::abs(first) * 1e-7 + 1e-5)
        << "edge node " << g.edge->node_id;
    EXPECT_NEAR(g.second, second, std::abs(second) * 1e-7 + 1e-5)
        << "edge node " << g.edge->node_id;
  }
}

// A tight CLA budget used to decline the descent (every postorder CLA is
// consumed after one up-front validation).  With the tiered ClaStore the
// preorder partials live in their own always-spilling tier and evicted
// postorder inputs are reloaded or rebuilt in place, so the sweep now
// *succeeds* on a tight budget and matches the full-budget gradient exactly
// (recompute reruns identical kernels; spill reloads are byte-exact).
TEST(AllBranchGradientBudget, TightBudgetMatchesFullBudget) {
  Rng rng(31);
  const auto alignment = random_alignment(16, 100, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(16, rng);

  LikelihoodEngine::Config full_config;
  full_config.isa = simd::Isa::kScalar;
  LikelihoodEngine full(patterns, model, tree, full_config);
  std::vector<BranchGradient> reference;
  ASSERT_TRUE(full.gradient_all_branches(tree.tip(0), reference));

  LikelihoodEngine::Config config;
  config.isa = simd::Isa::kScalar;
  config.cla_buffers = 6;
  LikelihoodEngine engine(patterns, model, tree, config);
  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(tree.tip(0), gradient));
  ASSERT_EQ(gradient.size(), reference.size());
  for (std::size_t i = 0; i < gradient.size(); ++i) {
    EXPECT_EQ(gradient[i].edge, reference[i].edge);
    EXPECT_EQ(gradient[i].first, reference[i].first)  // bitwise
        << "edge node " << gradient[i].edge->node_id;
    EXPECT_EQ(gradient[i].second, reference[i].second)
        << "edge node " << gradient[i].edge->node_id;
  }
  // The tight path really ran: preorder partials were evicted to the spill
  // tier and read back.
  EXPECT_GT(engine.cla_store().counters().evictions, 0);
}

// FD validation at the *minimum* postorder budget with the spill tier on:
// the strongest end of the satellite — gradients no longer decline, and they
// are still first derivatives of the actual log-likelihood.
TEST(AllBranchGradientBudget, MinimumBudgetFirstDerivativeMatchesFD) {
  Rng rng(977);
  const int ntaxa = 10;
  const auto alignment = random_alignment(ntaxa, 120, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  for (tree::Slot* edge : tree.edges()) {
    tree::Tree::set_length(edge, rng.uniform(0.05, 1.0));
  }

  LikelihoodEngine::Config config;
  config.isa = simd::Isa::kScalar;
  config.cla_buffers = 3;  // the floor
  config.cla_spill = true;
  LikelihoodEngine engine(patterns, model, tree, config);
  tree::Slot* root = tree.tip(0);

  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(root, gradient));
  ASSERT_EQ(gradient.size(), static_cast<std::size_t>(tree.edge_count()));

  const double h = 1e-4;
  for (const BranchGradient& g : gradient) {
    const double z = g.length;
    tree::Tree::set_length(g.edge, z + h);
    engine.invalidate_branch(g.edge->node_id);
    engine.invalidate_branch(g.edge->back->node_id);
    const double up = engine.log_likelihood(root);
    tree::Tree::set_length(g.edge, z - h);
    engine.invalidate_branch(g.edge->node_id);
    engine.invalidate_branch(g.edge->back->node_id);
    const double down = engine.log_likelihood(root);
    tree::Tree::set_length(g.edge, z);
    engine.invalidate_branch(g.edge->node_id);
    engine.invalidate_branch(g.edge->back->node_id);

    const double fd = (up - down) / (2.0 * h);
    EXPECT_NEAR(g.first, fd, std::abs(fd) * 1e-6 + 1e-6)
        << "edge node " << g.edge->node_id << " z=" << z;
  }
  EXPECT_GT(engine.cla_store().counters().spills, 0);
  EXPECT_GT(engine.cla_store().counters().reloads, 0);
}

// Satellite regression: the lnL returned by optimize_all_branches must be
// the likelihood of the tree it actually leaves behind — not a stale value
// from before the last in-place update.
TEST(BranchOptimizerRegression, OptimizeAllBranchesReturnsFreshLikelihood) {
  Rng rng(8088);
  const auto alignment = random_alignment(14, 200, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(14, rng);

  LikelihoodEngine engine(patterns, model, tree);
  tree::Slot* root = tree.tip(0);
  const double returned = engine.optimize_all_branches(root, 3);
  const double fresh = engine.log_likelihood(root);
  EXPECT_NEAR(returned, fresh, std::abs(fresh) * 1e-12 + 1e-9);
}

// Satellite regression: optimize_branch must never *lower* the likelihood.
// The geometric uphill fallback (second ≥ 0) used to be committed unguarded;
// extreme starting lengths push Newton through exactly that path.
TEST(BranchOptimizerRegression, OptimizeBranchIsMonotone) {
  Rng rng(4242);
  const auto alignment = random_alignment(12, 150, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(12, rng);

  LikelihoodEngine engine(patterns, model, tree);
  tree::Slot* root = tree.tip(0);
  const double starts[] = {1e-8, 1e-5, 0.3, 5.0, 49.0};
  int which = 0;
  for (tree::Slot* edge : tree.edges()) {
    tree::Tree::set_length(edge, starts[which++ % 5]);
    engine.invalidate_branch(edge->node_id);
    engine.invalidate_branch(edge->back->node_id);
    const double before = engine.log_likelihood(root);
    engine.optimize_branch(edge);
    const double after = engine.log_likelihood(root);
    EXPECT_GE(after, before - std::abs(before) * 1e-10 - 1e-8)
        << "edge node " << edge->node_id << " start " << starts[(which - 1) % 5];
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, AllBranchGradient, ::testing::ValuesIn(gradient_cases()),
                         case_name);

// The CAT engine keeps one CLA per inner node, so its sweep never declines;
// its gradient must match the per-branch protocol like the dense engine's.
TEST(AllBranchGradientEngines, CatMatchesPerBranchProtocol) {
  Rng rng(6201);
  const int ntaxa = 10;
  const auto alignment = random_alignment(ntaxa, 200, rng, /*ambiguity=*/0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  CatEngine engine(patterns, model, tree, /*categories=*/4);
  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(tree.tip(0), gradient));
  ASSERT_EQ(gradient.size(), static_cast<std::size_t>(tree.edge_count()));
  for (const BranchGradient& g : gradient) {
    engine.prepare_derivatives(g.edge);
    const auto [first, second] = engine.derivatives(g.edge->length);
    EXPECT_NEAR(g.first, first, std::abs(first) * 1e-8 + 1e-7)
        << "edge node " << g.edge->node_id;
    EXPECT_NEAR(g.second, second, std::abs(second) * 1e-8 + 1e-7)
        << "edge node " << g.edge->node_id;
  }
}

// DNA data through the general (arbitrary state count) engine: same
// contract, runtime geometry instead of the 4-state fast path.
TEST(AllBranchGradientEngines, GeneralMatchesPerBranchProtocol) {
  Rng rng(6301);
  const int ntaxa = 10;
  const auto alignment = random_alignment(ntaxa, 160, rng, /*ambiguity=*/0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const auto params = random_gtr_params(rng);
  const model::GeneralModel model(
      4, std::vector<double>(params.exchangeabilities.begin(), params.exchangeabilities.end()),
      std::vector<double>(params.frequencies.begin(), params.frequencies.end()), params.alpha);
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  GeneralEngine engine(patterns, model, tree, bio::dna_code_masks());
  std::vector<BranchGradient> gradient;
  ASSERT_TRUE(engine.gradient_all_branches(tree.tip(0), gradient));
  ASSERT_EQ(gradient.size(), static_cast<std::size_t>(tree.edge_count()));
  for (const BranchGradient& g : gradient) {
    engine.prepare_derivatives(g.edge);
    const auto [first, second] = engine.derivatives(g.edge->length);
    EXPECT_NEAR(g.first, first, std::abs(first) * 1e-8 + 1e-7)
        << "edge node " << g.edge->node_id;
    EXPECT_NEAR(g.second, second, std::abs(second) * 1e-8 + 1e-7)
        << "edge node " << g.edge->node_id;
  }
}

// Partitioned: the summed gradient must equal the evaluator's own derivative
// protocol, and must be bit-identical across merged-dispatch schedules (the
// preorder pass is serial per partition, so the schedule only reorders the
// postorder newviews, which are bitwise schedule-invariant by design).
TEST(AllBranchGradientEngines, PartitionedSumsAndSchedulesBitIdentical) {
  Rng rng(6401);
  const int ntaxa = 12;
  const auto alignment = random_alignment(ntaxa, 300, rng);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  const auto specs = even_partitions(static_cast<std::int64_t>(alignment.site_count()), 3);

  PartitionedEvaluator per_node(alignment, specs, model, tree);
  per_node.set_parallel_for(nullptr, PlanSchedule::kPerNode);
  PartitionedEvaluator wavefront(alignment, specs, model, tree);
  wavefront.set_parallel_for(nullptr, PlanSchedule::kWavefront);

  std::vector<BranchGradient> a;
  std::vector<BranchGradient> b;
  ASSERT_TRUE(per_node.gradient_all_branches(tree.tip(0), a));
  ASSERT_TRUE(wavefront.gradient_all_branches(tree.tip(0), b));
  ASSERT_EQ(a.size(), static_cast<std::size_t>(tree.edge_count()));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edge, b[i].edge);
    EXPECT_EQ(a[i].first, b[i].first) << "edge node " << a[i].edge->node_id;  // bitwise
    EXPECT_EQ(a[i].second, b[i].second) << "edge node " << a[i].edge->node_id;
  }
  for (const BranchGradient& g : a) {
    per_node.prepare_derivatives(g.edge);
    const auto [first, second] = per_node.derivatives(g.edge->length);
    EXPECT_NEAR(g.first, first, std::abs(first) * 1e-8 + 1e-7)
        << "edge node " << g.edge->node_id;
    EXPECT_NEAR(g.second, second, std::abs(second) * 1e-8 + 1e-7)
        << "edge node " << g.edge->node_id;
  }
}

// The gradient smoother must land on (at least) the same final likelihood as
// the classic per-branch Newton sweep from the same starting point.
TEST(GradientSmoother, MatchesNewtonOnlySmoothing) {
  const auto make_tree = [](Rng& rng, int ntaxa) {
    tree::Tree tree = tree::Tree::random(ntaxa, rng);
    return tree;
  };
  Rng data_rng(7707);
  const int ntaxa = 12;
  const auto alignment = random_alignment(ntaxa, 250, data_rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(data_rng));

  // Same tree twice (same seed), one engine per path.
  Rng tree_rng_a(991);
  tree::Tree tree_a = make_tree(tree_rng_a, ntaxa);
  Rng tree_rng_b(991);
  tree::Tree tree_b = make_tree(tree_rng_b, ntaxa);

  LikelihoodEngine newton_engine(patterns, model, tree_a);
  const double newton_lnl = newton_engine.optimize_all_branches(tree_a.tip(0), 3);

  LikelihoodEngine gradient_engine(patterns, model, tree_b);
  const double smooth_lnl =
      search::smooth_branches(gradient_engine, tree_b, tree_b.tip(0), 3);

  EXPECT_TRUE(std::isfinite(smooth_lnl));
  // The smoother self-reports honestly: its return must be the fresh lnL of
  // the tree it leaves behind.
  EXPECT_NEAR(smooth_lnl, gradient_engine.log_likelihood(tree_b.tip(0)),
              std::abs(smooth_lnl) * 1e-12 + 1e-9);
  // And it must not lose meaningful likelihood against Newton-only.
  EXPECT_GE(smooth_lnl, newton_lnl - 0.05);
}

}  // namespace
}  // namespace miniphi::core
