// Tests for src/io: FASTA, PHYLIP, Newick parsing and round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "src/io/fasta.hpp"
#include "src/io/newick.hpp"
#include "src/io/parse_error.hpp"
#include "src/io/phylip.hpp"
#include "src/util/error.hpp"

namespace miniphi::io {
namespace {

// ---------------------------------------------------------------- FASTA ----

TEST(Fasta, ParsesBasicRecords) {
  std::istringstream in(">seq1 description here\nACGT\nACGT\n>seq2\nTTTT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "seq1");
  EXPECT_EQ(records[0].sequence, "ACGTACGT");
  EXPECT_EQ(records[1].name, "seq2");
  EXPECT_EQ(records[1].sequence, "TTTT");
}

TEST(Fasta, HandlesWindowsLineEndingsAndBlankLines) {
  std::istringstream in(">a\r\nAC\r\n\r\nGT\r\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_THROW(read_fasta(in), Error);
}

TEST(Fasta, RejectsDuplicateNames) {
  std::istringstream in(">a\nAC\n>a\nGT\n");
  EXPECT_THROW(read_fasta(in), Error);
}

TEST(Fasta, RejectsEmptyRecord) {
  std::istringstream in(">a\nACGT\n>b\n");
  EXPECT_THROW(read_fasta(in), Error);
}

// Malformed corpus: every structural failure must surface as a ParseError
// whose line/column point at the offending character (not a generic Error
// naming no position).
TEST(FastaMalformed, NamesLineAndColumnOfNonIupacCharacter) {
  std::istringstream in(">a\nACGT\nAC1T\n");
  try {
    read_fasta(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 3u);
    EXPECT_NE(std::string(e.what()).find("non-IUPAC"), std::string::npos);
  }
}

TEST(FastaMalformed, AcceptsFullIupacAlphabetAndGaps) {
  std::istringstream in(">a\nACGTURYSWKMBDHVNXO-?.acgtu\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence.size(), 26u);
}

TEST(FastaMalformed, TruncatedRecordNamesItsHeaderLine) {
  std::istringstream in(">a\nACGT\n>empty\n>b\nTTTT\n");
  try {
    read_fasta(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("truncated record"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
  }
}

TEST(FastaMalformed, TruncatedFinalRecordIsAlsoAParseError) {
  std::istringstream in(">a\nACGT\n>b\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(FastaMalformed, DataBeforeHeaderCarriesLineOne) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  try {
    read_fasta(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
  }
}

TEST(FastaMalformed, DuplicateNameNamesTheSecondHeader) {
  std::istringstream in(">a\nAC\n>a\nGT\n");
  try {
    read_fasta(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Fasta, RoundTripsWithWrapping) {
  SequenceSet records = {{"x", std::string(200, 'A')}, {"y", std::string(200, 'C')}};
  std::ostringstream out;
  write_fasta(out, records, 60);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].sequence, records[0].sequence);
  EXPECT_EQ(parsed[1].sequence, records[1].sequence);
}

// --------------------------------------------------------------- PHYLIP ----

TEST(Phylip, ParsesRelaxedFormat) {
  std::istringstream in("3 8\ntaxA ACGTACGT\ntaxB ACG TACGT\ntaxC\nACGTACGT\n");
  const auto records = read_phylip(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].name, "taxB");
  EXPECT_EQ(records[1].sequence, "ACGTACGT");
  EXPECT_EQ(records[2].sequence, "ACGTACGT");
}

TEST(Phylip, RejectsTruncatedSequence) {
  std::istringstream in("2 10\na ACGT\nb ACGTACGTAC\n");
  EXPECT_THROW(read_phylip(in), Error);
}

TEST(Phylip, RejectsBadHeader) {
  std::istringstream in("zero sites\n");
  EXPECT_THROW(read_phylip(in), Error);
}

TEST(Phylip, RoundTrip) {
  SequenceSet records = {{"alpha", "ACGTTGCA"}, {"beta", "TTTTAAAA"}, {"gamma", "CCGGCCGG"}};
  std::ostringstream out;
  write_phylip(out, records);
  std::istringstream in(out.str());
  const auto parsed = read_phylip(in);
  ASSERT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed[i].name, records[i].name);
    EXPECT_EQ(parsed[i].sequence, records[i].sequence);
  }
}

TEST(Phylip, WriteRejectsUnequalLengths) {
  SequenceSet records = {{"a", "ACGT"}, {"b", "AC"}};
  std::ostringstream out;
  EXPECT_THROW(write_phylip(out, records), Error);
}

TEST(PhylipInterleaved, ParsesMultipleBlocks) {
  std::istringstream in(
      "3 12\n"
      "taxA ACGT ACGT\n"
      "taxB TTTT GGGG\n"
      "taxC CCCC AAAA\n"
      "\n"
      "GGAA\n"
      "CCTT\n"
      "TTGG\n");
  const auto records = read_phylip_interleaved(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "taxA");
  EXPECT_EQ(records[0].sequence, "ACGTACGTGGAA");
  EXPECT_EQ(records[1].sequence, "TTTTGGGGCCTT");
  EXPECT_EQ(records[2].sequence, "CCCCAAAATTGG");
}

TEST(PhylipInterleaved, SingleBlockEqualsSequential) {
  const std::string text = "2 4\na ACGT\nb TTAA\n";
  std::istringstream in1(text);
  std::istringstream in2(text);
  const auto sequential = read_phylip(in1);
  const auto interleaved = read_phylip_interleaved(in2);
  ASSERT_EQ(sequential.size(), interleaved.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].sequence, interleaved[i].sequence);
    EXPECT_EQ(sequential[i].name, interleaved[i].name);
  }
}

TEST(PhylipInterleaved, RejectsTruncatedAndRaggedBlocks) {
  std::istringstream truncated("2 8\na ACGT\nb TTAA\n");
  EXPECT_THROW(read_phylip_interleaved(truncated), Error);
  std::istringstream ragged(
      "2 8\n"
      "a ACGT\n"
      "b TTAA\n"
      "GG\n"
      "CCCC\n");
  EXPECT_THROW(read_phylip_interleaved(ragged), Error);
}

// --------------------------------------------------------------- Newick ----

TEST(Newick, ParsesLeafCountsAndLengths) {
  const auto tree = parse_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);");
  EXPECT_EQ(tree->leaf_count(), 4u);
  EXPECT_EQ(tree->size(), 6u);
  ASSERT_EQ(tree->children.size(), 3u);
  EXPECT_EQ(tree->children[0]->children[0]->name, "a");
  EXPECT_DOUBLE_EQ(*tree->children[0]->children[0]->length, 0.1);
  EXPECT_FALSE(tree->length.has_value());
}

TEST(Newick, ParsesQuotedLabelsAndComments) {
  const auto tree = parse_newick("('weird name':1,[comment]b:2,'it''s':3);");
  EXPECT_EQ(tree->children[0]->name, "weird name");
  EXPECT_EQ(tree->children[2]->name, "it's");
}

TEST(Newick, ParsesInnerLabelsAndScientificNotation) {
  const auto tree = parse_newick("((a:1e-3,b:2E2)label:0.5,c:1);");
  EXPECT_EQ(tree->children[0]->name, "label");
  EXPECT_DOUBLE_EQ(*tree->children[0]->children[0]->length, 1e-3);
  EXPECT_DOUBLE_EQ(*tree->children[0]->children[1]->length, 200.0);
}

TEST(Newick, RejectsMalformedInput) {
  EXPECT_THROW(parse_newick("(a,b"), Error);       // missing ) and ;
  EXPECT_THROW(parse_newick("(a,b);x"), Error);    // trailing junk
  EXPECT_THROW(parse_newick("();"), Error);        // empty group
  EXPECT_THROW(parse_newick("(a,:0.5);"), Error);  // unnamed leaf
  EXPECT_THROW(parse_newick("(a,b[);"), Error);    // unterminated comment
  EXPECT_THROW(parse_newick("(a,'b);"), Error);    // unterminated quote
}

TEST(NewickMalformed, UnbalancedParensPointAtTheOpeningParen) {
  // The '(' at line 2, column 3 is never closed.
  try {
    parse_newick("(a:1,\n  (b:1,c:1;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 3u);
    EXPECT_NE(std::string(e.what()).find("unbalanced parentheses"), std::string::npos);
  }
}

TEST(NewickMalformed, TruncatedTreeReportsMissingSemicolon) {
  try {
    parse_newick("(a:1,b:2)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated tree"), std::string::npos);
  }
}

TEST(NewickMalformed, OverlongLabelIsRejected) {
  const std::string big(600, 'x');
  EXPECT_THROW(parse_newick("(" + big + ":1,b:1);"), ParseError);
  // At the limit it still parses.
  const std::string ok(512, 'x');
  EXPECT_EQ(parse_newick("(" + ok + ":1,b:1);")->leaf_count(), 2u);
}

TEST(NewickMalformed, LineAndColumnTrackNewlines) {
  // Error (unnamed leaf) on line 3 of a multi-line tree.
  try {
    parse_newick("(a:1,\nb:2,\n:3);");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Newick, SerializationRoundTrip) {
  const std::string text = "((a:0.1,b:0.2):0.05,(c:0.3,d:0.4):0.01,e:1);";
  const auto tree = parse_newick(text);
  const auto again = parse_newick(to_newick(*tree));
  EXPECT_EQ(to_newick(*tree), to_newick(*again));
  EXPECT_EQ(again->leaf_count(), 5u);
}

TEST(Newick, DeepNestingParses) {
  std::string text = "a";
  for (int i = 0; i < 200; ++i) text = "(" + text + ":1,x" + std::to_string(i) + ":1)";
  text += ";";
  const auto tree = parse_newick(text);
  EXPECT_EQ(tree->leaf_count(), 201u);
}

}  // namespace
}  // namespace miniphi::io
