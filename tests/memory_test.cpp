// Tests for the tiered CLA store (DESIGN.md §14): ClaStore unit behavior
// (spill/reload byte-exactness, checksummed-reload corruption detection,
// plan-aware eviction order, the monotonic LRU epoch), the tight-budget
// bit-identity matrix across all three engine families, the engine-level
// heal of a corrupted spill record, per-partition budget carving, and
// budget-aware stream packing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/bio/aa.hpp"
#include "src/bio/patterns.hpp"
#include "src/core/cat/cat_engine.hpp"
#include "src/core/engine.hpp"
#include "src/core/general/general_engine.hpp"
#include "src/core/partition_spec.hpp"
#include "src/core/partitioned.hpp"
#include "src/core/kernels.hpp"
#include "src/core/sdc.hpp"
#include "src/memory/cla_store.hpp"
#include "src/model/general.hpp"
#include "src/platform/cost_model.hpp"
#include "src/simd/dispatch.hpp"
#include "src/util/cancellation.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi {
namespace {

using core::sdc::CorruptionDetected;
using memory::ClaStore;
using memory::ClaStoreConfig;
using memory::Residency;

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas;
  for (const auto isa : {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

// --- ClaStore unit tests ---------------------------------------------------

constexpr std::int64_t kValues = 64;
constexpr std::int64_t kScales = 8;

ClaStoreConfig small_config(int slots, int resident, bool spill) {
  ClaStoreConfig config;
  config.slots = slots;
  config.resident = resident;
  config.values = kValues;
  config.scales = kScales;
  config.spill = spill;
  config.spill_min_registers = 0;
  return config;
}

void fill_slot(ClaStore& store, int slot, double seed) {
  double* values = store.values(slot);
  for (std::int64_t i = 0; i < kValues; ++i) values[i] = seed + static_cast<double>(i);
  std::int32_t* scales = store.scales(slot);
  for (std::int64_t i = 0; i < kScales; ++i) {
    scales[i] = static_cast<std::int32_t>(seed) + static_cast<std::int32_t>(i);
  }
}

void expect_slot_bytes(ClaStore& store, int slot, double seed) {
  const double* values = store.values(slot);
  for (std::int64_t i = 0; i < kValues; ++i) {
    ASSERT_EQ(values[i], seed + static_cast<double>(i)) << "value " << i;
  }
  const std::int32_t* scales = store.scales(slot);
  for (std::int64_t i = 0; i < kScales; ++i) {
    ASSERT_EQ(scales[i], static_cast<std::int32_t>(seed) + static_cast<std::int32_t>(i))
        << "scale " << i;
  }
}

/// Acquires slots 0 and 1 with known contents, then forces both out to the
/// spill tier by acquiring 2 and 3.
void spill_first_two(ClaStore& store) {
  store.acquire(0);
  fill_slot(store, 0, 1000.0);
  store.set_rebuild_cost(0, 5);
  store.acquire(1);
  fill_slot(store, 1, 2000.0);
  store.set_rebuild_cost(1, 5);
  store.acquire(2);
  store.acquire(3);
  ASSERT_FALSE(store.resident(0));
  ASSERT_FALSE(store.resident(1));
  ASSERT_TRUE(store.spilled(0));
  ASSERT_TRUE(store.spilled(1));
}

TEST(ClaStore, SpillReloadRoundTripIsByteExact) {
  ClaStore store;
  store.configure(small_config(4, 2, /*spill=*/true));
  spill_first_two(store);
  EXPECT_EQ(store.counters().evictions, 2);
  EXPECT_EQ(store.counters().spills, 2);
  EXPECT_TRUE(store.has_data(0));

  EXPECT_EQ(store.ensure_resident(0), Residency::kReloaded);
  expect_slot_bytes(store, 0, 1000.0);
  EXPECT_EQ(store.counters().reloads, 1);

  EXPECT_EQ(store.ensure_resident(1), Residency::kReloaded);
  expect_slot_bytes(store, 1, 2000.0);
  EXPECT_EQ(store.counters().reloads, 2);
  EXPECT_GT(store.counters().spill_bytes, 0);

  // Already resident: a second ensure is a no-op.
  EXPECT_EQ(store.ensure_resident(1), Residency::kResident);
  EXPECT_EQ(store.counters().reloads, 2);
}

TEST(ClaStore, PrefetchedReloadIsByteExactAndCounted) {
  ClaStore store;
  store.configure(small_config(4, 2, /*spill=*/true));
  spill_first_two(store);
  // prefetch() is best-effort: it drops the request while the slot's spill
  // write is still staged.  Reloading slot 1 first blocks until its write
  // lands, and the single FIFO spill worker wrote slot 0 before slot 1, so
  // the prefetch below is deterministically accepted.
  EXPECT_EQ(store.ensure_resident(1), Residency::kReloaded);
  expect_slot_bytes(store, 1, 2000.0);
  store.prefetch(0);
  EXPECT_EQ(store.ensure_resident(0), Residency::kReloaded);
  expect_slot_bytes(store, 0, 1000.0);
  EXPECT_EQ(store.counters().prefetch_hits, 1);
}

TEST(ClaStore, CorruptedSpillRecordThrowsAndSurrendersData) {
  ClaStore store;
  store.configure(small_config(4, 2, /*spill=*/true));
  spill_first_two(store);
  ASSERT_TRUE(store.corrupt_spill_for_testing(0));
  EXPECT_THROW((void)store.ensure_resident(0), CorruptionDetected);
  // The record is unusable: the slot no longer claims data, so the owner's
  // heal path recomputes instead of rereading garbage.
  EXPECT_FALSE(store.has_data(0));
  // The sibling record is untouched.
  EXPECT_EQ(store.ensure_resident(1), Residency::kReloaded);
  expect_slot_bytes(store, 1, 2000.0);
}

TEST(ClaStore, TruncatedSpillRecordThrowsShortRead) {
  ClaStore store;
  store.configure(small_config(4, 2, /*spill=*/true));
  spill_first_two(store);
  // Truncating slot 1 (the higher file offset) leaves slot 0's record whole.
  ASSERT_TRUE(store.truncate_spill_for_testing(1));
  EXPECT_THROW((void)store.ensure_resident(1), CorruptionDetected);
  EXPECT_FALSE(store.has_data(1));
  EXPECT_EQ(store.ensure_resident(0), Residency::kReloaded);
  expect_slot_bytes(store, 0, 1000.0);
}

TEST(ClaStore, CorruptionNamesTheOwningNode) {
  ClaStore store;
  auto config = small_config(4, 2, /*spill=*/true);
  config.node_id_base = 10;
  store.configure(std::move(config));
  spill_first_two(store);
  ASSERT_TRUE(store.corrupt_spill_for_testing(1));
  try {
    (void)store.ensure_resident(1);
    FAIL() << "corrupted reload did not throw";
  } catch (const CorruptionDetected& fault) {
    EXPECT_EQ(fault.node_id(), 11);  // slot 1 + node_id_base
  }
}

TEST(ClaStore, EvictionPrefersSlotsWithNoRemainingPlanUse) {
  std::vector<int> drops;
  auto config = small_config(3, 2, /*spill=*/false);
  config.on_drop = [&](int slot) { drops.push_back(slot); };
  ClaStore store;
  store.configure(std::move(config));
  store.acquire(0);
  store.acquire(1);
  // Slot 1 was touched last, but slot 0 is the one the plan still reads:
  // the eviction must take slot 1 anyway.
  store.begin_plan();
  store.plan_next_use(0, 5);
  store.plan_cursor(0);
  store.acquire(2);
  EXPECT_TRUE(store.resident(0));
  EXPECT_FALSE(store.resident(1));
  EXPECT_EQ(drops, std::vector<int>{1});
}

TEST(ClaStore, EvictionTakesFarthestNextUseWhenAllAreNeeded) {
  std::vector<int> drops;
  auto config = small_config(3, 2, /*spill=*/false);
  config.on_drop = [&](int slot) { drops.push_back(slot); };
  ClaStore store;
  store.configure(std::move(config));
  store.acquire(0);
  store.acquire(1);
  store.begin_plan();
  store.plan_next_use(0, 2);
  store.plan_next_use(1, 9);
  store.plan_cursor(0);
  store.acquire(2);
  // Both are needed later; the farthest next use (slot 1 at op 9) goes.
  EXPECT_TRUE(store.resident(0));
  EXPECT_FALSE(store.resident(1));
  EXPECT_EQ(drops, std::vector<int>{1});
}

TEST(ClaStore, TouchEpochIsMonotonicAcrossDrops) {
  ClaStore store;
  store.configure(small_config(3, 3, /*spill=*/false));
  store.acquire(0);
  const std::uint64_t first = store.touch_epoch();
  store.touch(0);
  const std::uint64_t second = store.touch_epoch();
  EXPECT_GT(second, first);
  // A heal-style unwind (drop everything, re-acquire) must not rewind the
  // epoch: recency earned before the unwind stays comparable after it.
  store.drop_all();
  store.reset_pins();
  store.acquire(1);
  EXPECT_GT(store.touch_epoch(), second);
}

TEST(ClaStore, ResidentBytesReportsThePool) {
  ClaStore store;
  store.configure(small_config(4, 2, /*spill=*/false));
  EXPECT_EQ(store.resident_bytes(),
            2 * (kValues * static_cast<std::int64_t>(sizeof(double)) +
                 kScales * static_cast<std::int64_t>(sizeof(std::int32_t))));
}

TEST(ClaStore, ThrowsWhenEveryBufferIsPinned) {
  ClaStore store;
  store.configure(small_config(3, 2, /*spill=*/false));
  store.acquire(0);
  store.pin(0);
  store.acquire(1);
  store.pin(1);
  EXPECT_THROW(store.acquire(2), Error);
}

// --- Tight-budget bit-identity matrices ------------------------------------
//
// For every engine family: lnL and the full branch-length optimization must
// be bit-identical between the full CLA budget and tight budgets {min,
// min+2}, in both eviction modes (recompute-only and the spill tier), with
// the store's counters proving the tight path actually ran.

struct RunResult {
  double initial = 0.0;
  double optimized = 0.0;
};

template <typename MakeEngine>
RunResult run_matrix_case(const tree::Tree& base_tree, const MakeEngine& make_engine,
                          int budget, bool spill) {
  tree::Tree tree(base_tree);
  auto engine = make_engine(tree, budget, spill);
  RunResult result;
  result.initial = engine->log_likelihood(tree.tip(0));
  result.optimized = engine->optimize_all_branches(tree.tip(0), 2);
  if (budget > 0) {
    const auto& counters = engine->cla_store().counters();
    EXPECT_GT(counters.evictions, 0) << "tight budget never evicted";
    if (spill) {
      EXPECT_GT(counters.spills, 0) << "spill tier never wrote";
      EXPECT_GT(counters.reloads, 0) << "spill tier never reloaded";
    } else {
      EXPECT_GT(counters.recomputes + counters.evictions, 0);
    }
  }
  return result;
}

/// The smallest cla_buffers this tree shape can run with: the DFS executor
/// floors at 3, but a bushy topology's Sethi–Ullman working set (plus the
/// kernel pins) can need more, so probe upward from the floor.
template <typename MakeEngine>
int minimum_feasible_budget(const tree::Tree& base_tree, const MakeEngine& make_engine) {
  for (int budget = 3; budget < base_tree.inner_count(); ++budget) {
    try {
      tree::Tree tree(base_tree);
      auto engine = make_engine(tree, budget, /*spill=*/false);
      (void)engine->log_likelihood(tree.tip(0));
      (void)engine->optimize_all_branches(tree.tip(0), 2);
      return budget;
    } catch (const Error&) {
      // working set does not fit; try one more buffer
    }
  }
  return base_tree.inner_count();
}

template <typename MakeEngine>
void expect_budget_bit_identity(const tree::Tree& base_tree, const MakeEngine& make_engine,
                                const std::string& context) {
  const RunResult full = run_matrix_case(base_tree, make_engine, -1, false);
  const int minimum = minimum_feasible_budget(base_tree, make_engine);
  ASSERT_LT(minimum + 2, base_tree.inner_count()) << context << ": tree too small";
  for (const int budget : {minimum, minimum + 2}) {
    for (const bool spill : {false, true}) {
      const RunResult tight = run_matrix_case(base_tree, make_engine, budget, spill);
      EXPECT_EQ(tight.initial, full.initial)
          << context << ": budget " << budget << " spill " << spill;
      EXPECT_EQ(tight.optimized, full.optimized)
          << context << ": budget " << budget << " spill " << spill;
    }
  }
}

TEST(TightBudget, DenseBitIdenticalAcrossIsasAndRepeats) {
  Rng rng(31);
  const auto alignment = testutil::random_alignment(10, 160, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  const tree::Tree base_tree = tree::Tree::random(10, rng);
  for (const auto isa : supported_isas()) {
    for (const bool repeats : {false, true}) {
      const auto make_engine = [&](tree::Tree& tree, int budget, bool spill) {
        core::LikelihoodEngine::Config config;
        config.isa = isa;
        config.site_repeats = repeats;
        config.cla_buffers = budget;
        config.cla_spill = spill;
        return std::make_unique<core::LikelihoodEngine>(patterns, model, tree, config);
      };
      expect_budget_bit_identity(base_tree, make_engine,
                                 "dense " + simd::to_string(isa) +
                                     (repeats ? " repeats" : " no-repeats"));
    }
  }
}

TEST(TightBudget, CatBitIdenticalAcrossIsas) {
  Rng rng(32);
  const auto alignment = testutil::random_alignment(10, 140, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  const tree::Tree base_tree = tree::Tree::random(10, rng);
  const int categories = 5;
  std::vector<double> rates;
  for (int c = 0; c < categories; ++c) rates.push_back(rng.uniform(0.05, 4.0));
  std::vector<std::uint8_t> assignment(patterns.pattern_count());
  for (auto& a : assignment) {
    a = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(categories)));
  }
  for (const auto isa : supported_isas()) {
    const auto make_engine = [&](tree::Tree& tree, int budget, bool spill) {
      core::CatEngine::Config config;
      config.isa = isa;
      config.cla_buffers = budget;
      config.cla_spill = spill;
      auto engine =
          std::make_unique<core::CatEngine>(patterns, model, tree, categories, config);
      engine->set_categories(rates, assignment);
      return engine;
    };
    expect_budget_bit_identity(base_tree, make_engine, "cat " + simd::to_string(isa));
  }
}

TEST(TightBudget, GeneralBitIdenticalAcrossIsas) {
  Rng rng(33);
  const auto alignment = testutil::random_alignment(10, 120, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const tree::Tree base_tree = tree::Tree::random(10, rng);
  // A random reversible 4-state model over the DNA codes exercises the
  // general engine's padded-block path without needing protein data.
  std::vector<double> exchangeabilities(6);
  for (auto& rate : exchangeabilities) rate = rng.uniform(0.3, 3.0);
  std::vector<double> freqs{0.3, 0.25, 0.25, 0.2};
  const model::GeneralModel model(4, std::move(exchangeabilities), std::move(freqs), 0.9);
  for (const auto isa : supported_isas()) {
    const auto make_engine = [&](tree::Tree& tree, int budget, bool spill) {
      core::GeneralEngine::Config config;
      config.isa = isa;
      config.cla_buffers = budget;
      config.cla_spill = spill;
      return std::make_unique<core::GeneralEngine>(patterns, model, tree,
                                                   bio::dna_code_masks(), config);
    };
    expect_budget_bit_identity(base_tree, make_engine, "general " + simd::to_string(isa));
  }
}

TEST(TightBudget, MinimumWorkingSetIsEnforced) {
  Rng rng(34);
  const auto alignment = testutil::random_alignment(8, 80, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(8, rng);
  core::LikelihoodEngine::Config config;
  config.cla_buffers = 2;  // below the DFS executor's floor of 3
  EXPECT_THROW(core::LikelihoodEngine(patterns, model, tree, config), Error);
}

// --- Engine-level heal of a corrupted spill record --------------------------

TEST(SpillHeal, DenseReloadCorruptionDetectsAndHeals) {
  Rng rng(35);
  const auto alignment = testutil::random_alignment(10, 120, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);
  core::LikelihoodEngine::Config config;
  config.sdc_checks = true;
  config.cla_buffers = 3;
  config.cla_spill = true;
  core::LikelihoodEngine engine(patterns, model, tree, config);
  (void)engine.log_likelihood(tree.tip(0));

  // Pick one spilled slot that is NOT resident (a slot with a clean resident
  // copy satisfies ensure_resident from the pool without touching disk) and
  // corrupt its record.
  auto& store = engine.cla_store_for_testing();
  int corrupted_slot = -1;
  for (int slot = 0; slot < store.slot_count(); ++slot) {
    if (store.spilled(slot) && !store.resident(slot)) {
      corrupted_slot = slot;
      break;
    }
  }
  ASSERT_GE(corrupted_slot, 0) << "tight-budget traversal spilled nothing";
  ASSERT_TRUE(store.corrupt_spill_for_testing(corrupted_slot));

  // Re-root the evaluation on the corrupted node's root-facing edge: its
  // valid (but evicted) CLA becomes a plan root input, so the checksummed
  // reload is forced to run — an invalidation-driven recompute would just
  // discard the bad record unread.  full_traversal lists each inner node's
  // slot oriented toward tip 0, exactly the orientation the first
  // traversal committed.
  tree::Slot* corrupted_edge = nullptr;
  for (tree::Slot* slot : tree.full_traversal(tree.tip(0)->back)) {
    if (slot->node_id == tree.taxon_count() + corrupted_slot) corrupted_edge = slot;
  }
  ASSERT_NE(corrupted_edge, nullptr);

  // Bit-exact reference for that root edge from an uncorrupted full-budget
  // engine (likelihoods at different root edges need not be bit-identical,
  // so the tip-0 value is not the right baseline).
  tree::Tree reference_tree(tree);
  core::LikelihoodEngine reference(patterns, model, reference_tree,
                                   core::LikelihoodEngine::Config{});
  const double expected =
      reference.log_likelihood(reference_tree.slot(corrupted_edge->slot_index));

  const core::sdc::Counters before = engine.sdc_counters();
  const double healed = engine.log_likelihood(corrupted_edge);
  const core::sdc::Counters after = engine.sdc_counters();
  // The corrupt reload surfaces from the store (not the engine's lazy trust
  // pass, which is what counts `hits`) and lands in the heal ladder.
  EXPECT_EQ(after.heals, before.heals + 1);
  EXPECT_EQ(after.escalations, before.escalations);
  // The heal recomputes the corrupted CLA from its (clean) subtree, so the
  // final value is bit-identical to the never-corrupted one.
  EXPECT_EQ(healed, expected);
}

// --- Per-partition budget carving -------------------------------------------

constexpr std::int64_t kDenseBytesPerPattern =
    core::kSiteBlock * static_cast<std::int64_t>(sizeof(double)) +
    static_cast<std::int64_t>(sizeof(std::int32_t));

TEST(CarveClaBudgets, FloorsEveryPartitionAtTheMinimumWorkingSet) {
  const std::vector<std::int64_t> lengths{100, 50};
  const std::int64_t need = 3 * 100 * kDenseBytesPerPattern + 3 * 50 * kDenseBytesPerPattern;
  const auto counts = core::carve_cla_budgets(need, lengths, /*inner_count=*/10);
  EXPECT_EQ(counts, (std::vector<int>{3, 3}));
}

TEST(CarveClaBudgets, DealsSlackLargestPartitionFirst) {
  const std::vector<std::int64_t> lengths{100, 50};
  const std::int64_t need = (3 * 100 + 3 * 50) * kDenseBytesPerPattern;
  // Slack for rounds {p0, p1}, {p0}: big partition ends two buffers ahead.
  const std::int64_t slack = (100 + 50 + 100) * kDenseBytesPerPattern;
  const auto counts = core::carve_cla_budgets(need + slack, lengths, /*inner_count=*/10);
  EXPECT_EQ(counts, (std::vector<int>{5, 4}));
}

TEST(CarveClaBudgets, CapsAtTheInnerNodeCount) {
  const std::vector<std::int64_t> lengths{10, 10};
  const auto counts =
      core::carve_cla_budgets(1'000'000'000, lengths, /*inner_count=*/6);
  EXPECT_EQ(counts, (std::vector<int>{6, 6}));
}

TEST(CarveClaBudgets, SmallTreesFloorBelowThree) {
  const std::vector<std::int64_t> lengths{40};
  const auto counts = core::carve_cla_budgets(2 * 40 * kDenseBytesPerPattern, lengths,
                                              /*inner_count=*/2);
  EXPECT_EQ(counts, (std::vector<int>{2}));
}

TEST(CarveClaBudgets, ThrowsNamingTheMinimumWorkingSet) {
  const std::vector<std::int64_t> lengths{100, 50};
  try {
    (void)core::carve_cla_budgets(100, lengths, /*inner_count=*/10);
    FAIL() << "undersized budget did not throw";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("minimum working set"), std::string::npos);
  }
}

TEST(PartitionedBudget, GlobalBudgetCarvesAndStaysBitIdentical) {
  Rng rng(36);
  const auto alignment = testutil::random_alignment(8, 200, rng, 0.05);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  const auto specs = core::even_partitions(alignment.site_count(), 2);
  const tree::Tree base_tree = tree::Tree::random(8, rng);

  tree::Tree full_tree(base_tree);
  core::PartitionedEvaluator full(alignment, specs, model, full_tree);
  const double expected = full.log_likelihood(full_tree.tip(0));

  std::int64_t floors = 0;
  std::int64_t largest = 0;
  for (int p = 0; p < full.partition_count(); ++p) {
    const std::int64_t len = full.partition_patterns(p).pattern_count();
    floors += 3 * len * kDenseBytesPerPattern;
    largest = std::max(largest, len * kDenseBytesPerPattern);
  }

  tree::Tree tight_tree(base_tree);
  core::EngineConfig config;
  config.cla_budget_bytes = floors + largest;  // floors plus one spare buffer
  config.cla_spill = true;
  core::PartitionedEvaluator tight(alignment, specs, model, tight_tree, config);
  for (int p = 0; p < tight.partition_count(); ++p) {
    EXPECT_GE(tight.partition_cla_buffers(p), 3) << "partition " << p;
    EXPECT_LT(tight.partition_cla_buffers(p), tight_tree.inner_count()) << "partition " << p;
  }
  EXPECT_GT(tight.cla_bytes_granted(), 0);
  EXPECT_LE(tight.cla_bytes_granted(), config.cla_budget_bytes);

  EXPECT_EQ(tight.log_likelihood(tight_tree.tip(0)), expected);
  std::int64_t evictions = 0;
  for (int p = 0; p < tight.partition_count(); ++p) {
    evictions += tight.partition_engine(p).cla_store().counters().evictions;
  }
  EXPECT_GT(evictions, 0) << "carved budget never exercised the tight path";
}

TEST(PartitionedBudget, UndersizedGlobalBudgetThrows) {
  Rng rng(37);
  const auto alignment = testutil::random_alignment(8, 120, rng);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  const auto specs = core::even_partitions(alignment.site_count(), 2);
  tree::Tree tree = tree::Tree::random(8, rng);
  core::EngineConfig config;
  config.cla_budget_bytes = 100;
  try {
    core::PartitionedEvaluator evaluator(alignment, specs, model, tree, config);
    FAIL() << "undersized budget did not throw";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("minimum working set"), std::string::npos);
  }
}

// --- Budget-aware stream packing --------------------------------------------

TEST(StreamPacking, TightBudgetPartitionWeighsDouble) {
  const std::vector<std::int64_t> sizes{1000, 1000, 1000};
  // Partition 2 runs at the minimum budget (fraction 0): its modeled cost
  // doubles, so LPT packs it alone and the two full-budget partitions share
  // the other stream.
  const std::vector<double> fractions{1.0, 1.0, 0.0};
  const auto plan =
      platform::plan_partition_streams(sizes, /*stream_count=*/2, simd::Isa::kScalar, fractions);
  ASSERT_EQ(plan.partition_stream.size(), 3u);
  EXPECT_EQ(plan.partition_stream[0], plan.partition_stream[1]);
  EXPECT_NE(plan.partition_stream[0], plan.partition_stream[2]);
}

TEST(StreamPacking, BudgetFractionSizeMismatchThrows) {
  const std::vector<std::int64_t> sizes{1000, 1000, 1000};
  const std::vector<double> fractions{1.0, 0.5};
  EXPECT_THROW(
      (void)platform::plan_partition_streams(sizes, 2, simd::Isa::kScalar, fractions),
      Error);
}

// --- Spill-tier resource hygiene under cancellation --------------------------

/// Open descriptors in this process.  The spill backing file is unlinked at
/// creation, so a leaked fd is the ONLY observable trace of a leaked spill
/// tier — /proc/self/fd is the leak detector.
std::size_t open_fd_count() {
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

TEST(SpillLifecycle, CancelledJobsLeakNoSpillFileDescriptors) {
  Rng rng(38);
  const auto alignment = testutil::random_alignment(10, 120, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  const tree::Tree base_tree = tree::Tree::random(10, rng);

  const auto spill_run = [&](const CancelToken* token) {
    tree::Tree tree(base_tree);
    core::LikelihoodEngine::Config config;
    config.cla_buffers = 3;  // minimum working set: every traversal spills
    config.cla_spill = true;
    config.cancel = token;
    core::LikelihoodEngine engine(patterns, model, tree, config);
    (void)engine.log_likelihood(tree.tip(0));
  };

  // Warm-up absorbs lazily-opened descriptors (locale, /proc itself, …) so
  // the baseline measures steady state, not first-use initialisation.
  spill_run(nullptr);
  const std::size_t baseline = open_fd_count();

  // Each cancelled run opens its own spill backing file and must close it
  // while unwinding through CancelledError mid-traversal.
  for (int round = 0; round < 5; ++round) {
    CancelToken token;
    token.arm_trip_after(5);
    EXPECT_THROW(spill_run(&token), CancelledError) << "round " << round;
    EXPECT_EQ(open_fd_count(), baseline) << "round " << round;
  }

  // And a clean run after the cancelled ones still completes and stays flat.
  spill_run(nullptr);
  EXPECT_EQ(open_fd_count(), baseline);
}

}  // namespace
}  // namespace miniphi
