// Tests for src/minimpi: collective semantics, determinism, point-to-point,
// statistics, and stress under many concurrent operations.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "src/minimpi/minimpi.hpp"
#include "src/util/error.hpp"

namespace miniphi::mpi {
namespace {

TEST(World, RunsEveryRankOnce) {
  World world(6);
  std::vector<std::atomic<int>> hits(6);
  world.run([&](Communicator& comm) { hits[static_cast<std::size_t>(comm.rank())]++; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(World, PropagatesRankExceptions) {
  World world(3);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 1) throw Error("rank 1 failed");
               }),
               Error);
}

TEST(World, RejectsEmptyWorld) { EXPECT_THROW(World(0), Error); }

TEST(Collectives, BarrierSynchronizesPhases) {
  World world(4);
  std::atomic<int> phase_one{0};
  std::vector<int> seen(4, -1);
  world.run([&](Communicator& comm) {
    phase_one++;
    comm.barrier();
    // After the barrier every rank must observe all phase-one increments.
    seen[static_cast<std::size_t>(comm.rank())] = phase_one.load();
  });
  for (const int value : seen) EXPECT_EQ(value, 4);
}

TEST(Collectives, AllreduceSumsContributions) {
  World world(5);
  std::vector<double> results(5, 0.0);
  world.run([&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
  });
  for (const double value : results) EXPECT_DOUBLE_EQ(value, 15.0);
}

TEST(Collectives, AllreduceIsBitwiseIdenticalAcrossRanks) {
  // Fixed reduction order: every rank must get the *same* floating-point
  // value, not just mathematically equal ones (ExaML replica consistency).
  World world(7);
  std::vector<double> results(7, 0.0);
  world.run([&](Communicator& comm) {
    const double contribution = 0.1 * (comm.rank() + 1) + 1e-13 * comm.rank();
    results[static_cast<std::size_t>(comm.rank())] = comm.allreduce_sum(contribution);
  });
  for (int r = 1; r < 7; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);  // bitwise
  }
}

TEST(Collectives, RepeatedAllreducesDoNotInterfere) {
  World world(4);
  std::vector<double> sums(4, 0.0);
  world.run([&](Communicator& comm) {
    double total = 0.0;
    for (int i = 0; i < 500; ++i) {
      total += comm.allreduce_sum(static_cast<double>(i % 7));
    }
    sums[static_cast<std::size_t>(comm.rank())] = total;
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(sums[static_cast<std::size_t>(r)], sums[0]);
}

TEST(Collectives, VectorAllreduce) {
  World world(3);
  std::vector<std::vector<double>> results(3);
  world.run([&](Communicator& comm) {
    std::vector<double> values = {1.0 * comm.rank(), 2.0, -1.0 * comm.rank()};
    comm.allreduce_sum(values);
    results[static_cast<std::size_t>(comm.rank())] = values;
  });
  for (const auto& values : results) {
    EXPECT_DOUBLE_EQ(values[0], 3.0);   // 0+1+2
    EXPECT_DOUBLE_EQ(values[1], 6.0);   // 2×3
    EXPECT_DOUBLE_EQ(values[2], -3.0);  // 0-1-2
  }
}

TEST(Collectives, MinlocFindsMinimumAndRank) {
  World world(5);
  std::vector<std::pair<double, int>> results(5);
  world.run([&](Communicator& comm) {
    const double value = (comm.rank() == 3) ? -7.5 : static_cast<double>(comm.rank());
    results[static_cast<std::size_t>(comm.rank())] = comm.allreduce_minloc(value);
  });
  for (const auto& [value, rank] : results) {
    EXPECT_DOUBLE_EQ(value, -7.5);
    EXPECT_EQ(rank, 3);
  }
}

TEST(Collectives, MinlocTieBreaksBySmallestRank) {
  World world(4);
  std::vector<std::pair<double, int>> results(4);
  world.run([&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] = comm.allreduce_minloc(1.0);
  });
  for (const auto& [value, rank] : results) {
    EXPECT_DOUBLE_EQ(value, 1.0);
    EXPECT_EQ(rank, 0);
  }
}

TEST(Collectives, BroadcastScalarAndVector) {
  World world(4);
  std::vector<double> scalars(4, 0.0);
  std::vector<std::vector<double>> vectors(4);
  world.run([&](Communicator& comm) {
    scalars[static_cast<std::size_t>(comm.rank())] =
        comm.broadcast(comm.rank() == 2 ? 9.25 : -1.0, /*root=*/2);
    std::vector<double> payload = {static_cast<double>(comm.rank()), 0.0};
    if (comm.rank() == 1) payload = {3.5, 4.5};
    comm.broadcast(payload, /*root=*/1);
    vectors[static_cast<std::size_t>(comm.rank())] = payload;
  });
  for (const double value : scalars) EXPECT_DOUBLE_EQ(value, 9.25);
  for (const auto& payload : vectors) {
    EXPECT_DOUBLE_EQ(payload[0], 3.5);
    EXPECT_DOUBLE_EQ(payload[1], 4.5);
  }
}

TEST(PointToPoint, SendRecvDeliversInOrder) {
  World world(2);
  std::vector<double> received;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      const double a[] = {1.0, 2.0};
      const double b[] = {3.0};
      comm.send(1, /*tag=*/7, a);
      comm.send(1, /*tag=*/7, b);
    } else {
      const auto first = comm.recv(0, 7);
      const auto second = comm.recv(0, 7);
      received = first;
      received.insert(received.end(), second.begin(), second.end());
    }
  });
  ASSERT_EQ(received.size(), 3u);
  EXPECT_DOUBLE_EQ(received[0], 1.0);
  EXPECT_DOUBLE_EQ(received[2], 3.0);
}

TEST(PointToPoint, TagsSelectMessages) {
  World world(2);
  std::vector<double> tagged;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      const double a[] = {1.0};
      const double b[] = {2.0};
      comm.send(1, /*tag=*/10, a);
      comm.send(1, /*tag=*/20, b);
    } else {
      // Receive out of send order, selected by tag.
      const auto twenty = comm.recv(0, 20);
      const auto ten = comm.recv(0, 10);
      tagged = {twenty[0], ten[0]};
    }
  });
  ASSERT_EQ(tagged.size(), 2u);
  EXPECT_DOUBLE_EQ(tagged[0], 2.0);
  EXPECT_DOUBLE_EQ(tagged[1], 1.0);
}

TEST(PointToPoint, RejectsSelfAndInvalidDestination) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 const double x[] = {1.0};
                 comm.send(comm.rank(), 0, x);  // self-send
               }),
               Error);
}

TEST(Stats, CountsOperationsAndBytes) {
  World world(3);
  world.run([](Communicator& comm) {
    comm.barrier();
    (void)comm.allreduce_sum(1.0);
    (void)comm.broadcast(2.0, 0);
    if (comm.rank() == 0) {
      const double payload[4] = {0, 1, 2, 3};
      comm.send(1, 0, payload);
    } else if (comm.rank() == 1) {
      (void)comm.recv(0, 0);
    }
  });
  const auto stats = world.total_stats();
  EXPECT_EQ(stats.barriers, 3);
  EXPECT_EQ(stats.allreduces, 3);
  EXPECT_EQ(stats.broadcasts, 3);
  EXPECT_EQ(stats.point_to_point, 2);  // one send + one recv
  // Bytes: 3 allreduce ×8 + 3 bcast ×8 + one 32-byte send.
  EXPECT_EQ(stats.bytes, 3 * 8 + 3 * 8 + 32);
}

TEST(Stress, ManyRanksManyMixedCollectives) {
  World world(8);
  std::vector<double> checksums(8, 0.0);
  world.run([&](Communicator& comm) {
    double checksum = 0.0;
    for (int i = 0; i < 100; ++i) {
      checksum += comm.allreduce_sum(static_cast<double>((comm.rank() * 31 + i) % 11));
      if (i % 10 == 0) comm.barrier();
      checksum += comm.broadcast(checksum, i % comm.size());
    }
    checksums[static_cast<std::size_t>(comm.rank())] = checksum;
  });
  // Broadcast makes all checksums converge across ranks; primarily this
  // test must not deadlock or race (run under the default test timeout).
  for (int r = 1; r < 8; ++r) {
    EXPECT_EQ(checksums[static_cast<std::size_t>(r)], checksums[0]);
  }
}

}  // namespace
}  // namespace miniphi::mpi
