// Tests for src/model: incomplete gamma, discrete Γ rates, Jacobi
// eigensolver, and the GTR model invariants every likelihood computation
// rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/model/eigen.hpp"
#include "src/model/gamma.hpp"
#include "src/model/gtr.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/testutil.hpp"

namespace miniphi::model {
namespace {

// ---------------------------------------------------------------- gamma ----

TEST(IncompleteGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_gamma_p(1.0, 0.0), 0.0);
  EXPECT_NEAR(incomplete_gamma_p(1.0, 700.0), 1.0, 1e-12);
}

TEST(IncompleteGamma, ExponentialSpecialCase) {
  // For a = 1 the distribution is Exponential(1): P(1, x) = 1 - e^{-x}.
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(incomplete_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
  }
}

TEST(IncompleteGamma, HalfIntegerShapeMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (const double x : {0.01, 0.25, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(incomplete_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12) << "x=" << x;
  }
}

TEST(IncompleteGamma, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x < 10.0; x += 0.25) {
    const double p = incomplete_gamma_p(2.3, x);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

TEST(IncompleteGamma, RejectsBadArguments) {
  EXPECT_THROW(incomplete_gamma_p(0.0, 1.0), Error);
  EXPECT_THROW(incomplete_gamma_p(1.0, -0.5), Error);
  EXPECT_THROW(incomplete_gamma_inv(1.0, 1.0), Error);
  EXPECT_THROW(incomplete_gamma_inv(1.0, -0.1), Error);
}

class GammaInverseRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GammaInverseRoundTrip, InvertsCdf) {
  const double a = GetParam();
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = incomplete_gamma_inv(a, p);
    EXPECT_GT(x, 0.0);
    EXPECT_NEAR(incomplete_gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaInverseRoundTrip,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0));

class DiscreteGammaRates : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteGammaRates, UnitMeanAndAscending) {
  const double alpha = GetParam();
  for (const int k : {1, 2, 4, 8}) {
    const auto rates = discrete_gamma_rates(alpha, k);
    ASSERT_EQ(rates.size(), static_cast<std::size_t>(k));
    double mean = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      EXPECT_GT(rates[i], 0.0);
      if (i > 0) {
        EXPECT_GT(rates[i], rates[i - 1]);
      }
      mean += rates[i];
    }
    mean /= k;
    EXPECT_NEAR(mean, 1.0, 1e-9) << "alpha=" << alpha << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DiscreteGammaRates,
                         ::testing::Values(0.1, 0.3, 0.5, 1.0, 2.0, 10.0, 100.0));

TEST(DiscreteGamma, MedianVariantAlsoUnitMean) {
  const auto rates = discrete_gamma_rates(0.7, 4, /*use_median=*/true);
  double mean = 0.0;
  for (const double r : rates) mean += r;
  EXPECT_NEAR(mean / 4.0, 1.0, 1e-12);
}

TEST(DiscreteGamma, LargeAlphaApproachesUniformRates) {
  const auto rates = discrete_gamma_rates(1e4, 4);
  for (const double r : rates) EXPECT_NEAR(r, 1.0, 0.05);
}

TEST(DiscreteGamma, SmallAlphaIsStronglySkewed) {
  const auto rates = discrete_gamma_rates(0.1, 4);
  EXPECT_LT(rates[0], 1e-3);   // lowest category almost invariant
  EXPECT_GT(rates[3], 2.5);    // highest category carries the mass
}

TEST(DiscreteGamma, KnownYang1994Value) {
  // Classic reference point (Yang 1994, table 3 style): alpha = 0.5, K = 4.
  const auto rates = discrete_gamma_rates(0.5, 4);
  EXPECT_NEAR(rates[0], 0.0334, 5e-4);
  EXPECT_NEAR(rates[1], 0.2519, 5e-4);
  EXPECT_NEAR(rates[2], 0.8203, 5e-4);
  EXPECT_NEAR(rates[3], 2.8944, 5e-4);
}

// ---------------------------------------------------------------- eigen ----

TEST(JacobiEigen, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(JacobiEigen, RejectsAsymmetricInput) {
  Matrix a(2);
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  EXPECT_THROW(jacobi_eigen(a), Error);
}

class JacobiRandom : public ::testing::TestWithParam<int> {};

TEST_P(JacobiRandom, ReconstructsAndOrthonormal) {
  const int n = GetParam();
  Rng rng(42 + static_cast<std::uint64_t>(n));
  Matrix a(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform(-2.0, 2.0);
      a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = v;
      a(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) = v;
    }
  }
  const auto eig = jacobi_eigen(a);

  // A v_k = λ_k v_k.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double av = 0.0;
      for (int j = 0; j < n; ++j) {
        av += a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
              eig.vectors(static_cast<std::size_t>(j), static_cast<std::size_t>(k));
      }
      EXPECT_NEAR(av,
                  eig.values[static_cast<std::size_t>(k)] *
                      eig.vectors(static_cast<std::size_t>(i), static_cast<std::size_t>(k)),
                  1e-9);
    }
  }
  // VᵀV = I.
  for (int k = 0; k < n; ++k) {
    for (int m = 0; m < n; ++m) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) {
        dot += eig.vectors(static_cast<std::size_t>(i), static_cast<std::size_t>(k)) *
               eig.vectors(static_cast<std::size_t>(i), static_cast<std::size_t>(m));
      }
      EXPECT_NEAR(dot, (k == m) ? 1.0 : 0.0, 1e-10);
    }
  }
  // Ascending order.
  for (int k = 1; k < n; ++k) {
    EXPECT_LE(eig.values[static_cast<std::size_t>(k - 1)],
              eig.values[static_cast<std::size_t>(k)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiRandom, ::testing::Values(2, 3, 4, 5, 8, 12, 20));

// ------------------------------------------------------------------ gtr ----

TEST(GtrModel, RejectsInvalidParameters) {
  GtrParams params;
  params.exchangeabilities[2] = -1.0;
  EXPECT_THROW(GtrModel{params}, Error);

  params = GtrParams{};
  params.frequencies = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(GtrModel{params}, Error);

  params = GtrParams{};
  params.alpha = 0.0;
  EXPECT_THROW(GtrModel{params}, Error);
}

class GtrRandomModel : public ::testing::TestWithParam<int> {
 protected:
  GtrRandomModel() : rng_(1234 + static_cast<std::uint64_t>(GetParam())) {}
  Rng rng_;
};

TEST_P(GtrRandomModel, RateMatrixRowsSumToZero) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto q = model.rate_matrix();
  for (int i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int j = 0; j < 4; ++j) row += q[static_cast<std::size_t>(i * 4 + j)];
    EXPECT_NEAR(row, 0.0, 1e-10);
  }
}

TEST_P(GtrRandomModel, DetailedBalance) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto q = model.rate_matrix();
  const auto& pi = model.frequencies();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(pi[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i * 4 + j)],
                  pi[static_cast<std::size_t>(j)] * q[static_cast<std::size_t>(j * 4 + i)],
                  1e-10);
    }
  }
}

TEST_P(GtrRandomModel, UnitSubstitutionRate) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto q = model.rate_matrix();
  const auto& pi = model.frequencies();
  double mu = 0.0;
  for (int i = 0; i < 4; ++i) {
    mu -= pi[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i * 4 + i)];
  }
  EXPECT_NEAR(mu, 1.0, 1e-10);
}

TEST_P(GtrRandomModel, TransitionMatrixIsStochastic) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  for (const double t : {0.0, 0.01, 0.1, 1.0, 10.0}) {
    for (const double rate : {0.2, 1.0, 3.0}) {
      const auto p = model.transition_matrix(t, rate);
      for (int i = 0; i < 4; ++i) {
        double row = 0.0;
        for (int j = 0; j < 4; ++j) {
          const double value = p[static_cast<std::size_t>(i * 4 + j)];
          EXPECT_GE(value, 0.0);
          EXPECT_LE(value, 1.0 + 1e-12);
          row += value;
        }
        EXPECT_NEAR(row, 1.0, 1e-10) << "t=" << t;
      }
    }
  }
}

TEST_P(GtrRandomModel, TransitionAtZeroIsIdentity) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto p = model.transition_matrix(0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(p[static_cast<std::size_t>(i * 4 + j)], (i == j) ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST_P(GtrRandomModel, StationaryDistributionIsFixed) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto p = model.transition_matrix(0.7);
  const auto& pi = model.frequencies();
  for (int j = 0; j < 4; ++j) {
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) {
      sum += pi[static_cast<std::size_t>(i)] * p[static_cast<std::size_t>(i * 4 + j)];
    }
    EXPECT_NEAR(sum, pi[static_cast<std::size_t>(j)], 1e-10);
  }
}

TEST_P(GtrRandomModel, ChapmanKolmogorov) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto p1 = model.transition_matrix(0.3);
  const auto p2 = model.transition_matrix(0.5);
  const auto p3 = model.transition_matrix(0.8);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        sum += p1[static_cast<std::size_t>(i * 4 + k)] * p2[static_cast<std::size_t>(k * 4 + j)];
      }
      EXPECT_NEAR(sum, p3[static_cast<std::size_t>(i * 4 + j)], 1e-10);
    }
  }
}

TEST_P(GtrRandomModel, DerivativesMatchFiniteDifferences) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const double t = 0.4;
  const double rate = 1.3;
  const double h = 1e-6;
  const auto p_plus = model.transition_matrix(t + h, rate);
  const auto p_minus = model.transition_matrix(t - h, rate);
  const auto p0 = model.transition_matrix(t, rate);
  const auto d1 = model.transition_derivative(t, rate, 1);
  const auto d2 = model.transition_derivative(t, rate, 2);
  for (std::size_t e = 0; e < 16; ++e) {
    EXPECT_NEAR(d1[e], (p_plus[e] - p_minus[e]) / (2 * h), 1e-6);
    EXPECT_NEAR(d2[e], (p_plus[e] - 2 * p0[e] + p_minus[e]) / (h * h), 1e-3);
  }
}

TEST_P(GtrRandomModel, EigenBasisIsInverse) {
  const GtrModel model(testutil::random_gtr_params(rng_));
  const auto& u = model.eigen_u();
  const auto& w = model.eigen_w();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        sum += u[static_cast<std::size_t>(i * 4 + k)] * w[static_cast<std::size_t>(k * 4 + j)];
      }
      EXPECT_NEAR(sum, (i == j) ? 1.0 : 0.0, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtrRandomModel, ::testing::Range(0, 8));

TEST(GtrModel, Jc69ClosedForm) {
  // Under JC69, P_ii(t) = 1/4 + 3/4 e^{-4t/3}, P_ij = 1/4 − 1/4 e^{-4t/3}.
  const GtrModel model(GtrParams::jc69());
  for (const double t : {0.05, 0.3, 1.0, 3.0}) {
    const auto p = model.transition_matrix(t);
    const double e = std::exp(-4.0 * t / 3.0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        const double expected = (i == j) ? 0.25 + 0.75 * e : 0.25 - 0.25 * e;
        EXPECT_NEAR(p[static_cast<std::size_t>(i * 4 + j)], expected, 1e-12) << "t=" << t;
      }
    }
  }
}

TEST(GtrModel, Hky85TransitionBias) {
  // κ > 1 must make transitions (A<->G, C<->T) more likely than transversions.
  const GtrModel model(GtrParams::hky85(4.0, {0.25, 0.25, 0.25, 0.25}));
  const auto p = model.transition_matrix(0.2);
  const double a_to_g = p[0 * 4 + 2];
  const double a_to_c = p[0 * 4 + 1];
  EXPECT_GT(a_to_g, 2.0 * a_to_c);
}

TEST(GtrModel, EigenvaluesNonPositiveWithOneZero) {
  Rng rng(99);
  const GtrModel model(testutil::random_gtr_params(rng));
  const auto& lambda = model.eigenvalues();
  int zeros = 0;
  for (const double value : lambda) {
    EXPECT_LE(value, 1e-10);
    if (std::abs(value) < 1e-10) ++zeros;
  }
  EXPECT_EQ(zeros, 1);
}

}  // namespace
}  // namespace miniphi::model
