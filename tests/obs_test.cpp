// Tests for the observability subsystem (src/obs/): metrics registry
// sharding and merge, histogram geometry, span tracer export format, and the
// EvalStats aggregation path the evaluators share.
//
// The registry and tracer are process-wide singletons, so every test resets
// them and uses test-unique metric names to stay independent of execution
// order.
#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/bio/patterns.hpp"
#include "src/core/engine.hpp"
#include "src/core/eval_stats.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/obs/span_trace.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/parsimony.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace miniphi;

// ---------------------------------------------------------------------------
// Histogram geometry

TEST(Histogram, BucketZeroHoldsNonPositiveAndSubOne) {
  EXPECT_EQ(obs::histogram_bucket(-5), 0);
  EXPECT_EQ(obs::histogram_bucket(0), 0);
  // 2^0 <= 1 < 2^1 -> bucket 1 by the documented geometry.
  EXPECT_EQ(obs::histogram_bucket(1), 1);
}

TEST(Histogram, PowerOfTwoEdgesLandInUpperBucket) {
  // Bucket b >= 1 covers [2^(b-1), 2^b): the lower edge is inclusive.
  for (int b = 1; b < obs::kHistogramBuckets - 1; ++b) {
    const std::int64_t floor = obs::histogram_bucket_floor(b);
    EXPECT_EQ(obs::histogram_bucket(floor), b) << "floor of bucket " << b;
    EXPECT_EQ(obs::histogram_bucket(floor - 1), b - 1) << "below floor of bucket " << b;
    if (2 * floor - 1 > floor) {
      EXPECT_EQ(obs::histogram_bucket(2 * floor - 1), b) << "ceiling of bucket " << b;
    }
  }
}

TEST(Histogram, LastBucketAbsorbsEverythingAbove) {
  const int last = obs::kHistogramBuckets - 1;
  EXPECT_EQ(obs::histogram_bucket(std::int64_t{1} << 62), last);
  EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_floor(last)), last);
}

TEST(Histogram, FloorsAreMonotonePowersOfTwo) {
  EXPECT_EQ(obs::histogram_bucket_floor(0), 0);
  EXPECT_EQ(obs::histogram_bucket_floor(1), 1);
  for (int b = 2; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(obs::histogram_bucket_floor(b), 2 * obs::histogram_bucket_floor(b - 1));
  }
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, CounterInterningIsIdempotent) {
  auto& registry = obs::Registry::instance();
  const auto id1 = registry.counter("obs_test.intern");
  const auto id2 = registry.counter("obs_test.intern");
  EXPECT_EQ(id1, id2);
}

TEST(Registry, CounterMergesAcrossThreads) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.counter("obs_test.merge");
  registry.reset();

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) registry.add(id, 1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.value(id), static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(Registry, CountsSurviveThreadExit) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.counter("obs_test.survive");
  registry.reset();
  std::thread([&] { registry.add(id, 7); }).join();
  std::thread([&] { registry.add(id, 35); }).join();
  // The shards of exited threads keep contributing to the merge.
  EXPECT_EQ(registry.value(id), 42);
}

TEST(Registry, ShardsAreRecycledAcrossThreadChurn) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.counter("obs_test.churn");
  // Sequential short-lived threads (the minimpi rank pattern) must reuse
  // retired shards, not grow the shard list per thread.
  std::thread([&] { registry.add(id, 1); }).join();
  const std::size_t before = registry.shard_count();
  for (int i = 0; i < 16; ++i) {
    std::thread([&] { registry.add(id, 1); }).join();
  }
  EXPECT_EQ(registry.shard_count(), before);
}

TEST(Registry, GaugeIsLastWriteWinsNotSummed) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.gauge("obs_test.gauge");
  registry.reset();
  std::thread([&] { registry.set(id, 100); }).join();
  registry.set(id, 25);  // a second writer must replace, not add
  EXPECT_EQ(registry.value(id), 25);
}

TEST(Registry, HistogramSnapshotCountsSumAndBuckets) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.histogram("obs_test.histo");
  registry.reset();
  registry.observe(id, 0);   // bucket 0
  registry.observe(id, 1);   // bucket 1
  registry.observe(id, 5);   // bucket 3: [4, 8)
  registry.observe(id, 5);
  const auto snapshot = registry.histogram_snapshot(id);
  EXPECT_EQ(snapshot.count, 4);
  EXPECT_EQ(snapshot.sum, 11);
  ASSERT_EQ(snapshot.buckets.size(), static_cast<std::size_t>(obs::kHistogramBuckets));
  EXPECT_EQ(snapshot.buckets[0], 1);
  EXPECT_EQ(snapshot.buckets[1], 1);
  EXPECT_EQ(snapshot.buckets[3], 2);
}

TEST(Registry, ConcurrentReadersSeeConsistentPartialSums) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.counter("obs_test.concurrent");
  registry.reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) registry.add(id, 1);
  });
  // Merged reads racing the writer must be monotone non-decreasing.
  std::int64_t last = 0;
  for (int i = 0; i < 1'000; ++i) {
    const std::int64_t now = registry.value(id);
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(Registry, SnapshotContainsRegisteredMetrics) {
  auto& registry = obs::Registry::instance();
  const auto id = registry.counter("obs_test.snapshot");
  registry.reset();
  registry.add(id, 3);
  bool found = false;
  for (const auto& metric : registry.snapshot()) {
    if (metric.name == "obs_test.snapshot") {
      found = true;
      EXPECT_EQ(metric.kind, obs::MetricKind::kCounter);
      EXPECT_EQ(metric.value, 3);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Tracer

/// Minimal JSON validator: walks the value grammar (objects, arrays,
/// strings with escapes, numbers, literals) and returns true iff the whole
/// input is one well-formed value.  Enough to catch unbalanced brackets,
/// bad escaping, or trailing commas in the exporter.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(Tracer, DisabledTracerRecordsNothing) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  { const obs::ScopedSpan span("obs_test:disabled"); }
  EXPECT_EQ(tracer.event_count(), 0);
}

TEST(Tracer, ExportedTraceIsWellFormedJson) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  tracer.set_thread_label("main \"quoted\"\\label");  // exercises escaping
  { const obs::ScopedSpan span("obs_test:outer"); }
  { const obs::ScopedSpan span("obs_test:inner"); }
  tracer.set_enabled(false);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("obs_test:outer"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_EQ(tracer.event_count(), 2);
  tracer.clear();
}

TEST(Tracer, EventsFromMultipleThreadsAllExported) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;  // crosses no chunk boundary per thread
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSpans; ++i) {
        const obs::ScopedSpan span("obs_test:worker");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.event_count(), kThreads * kSpans);
  EXPECT_TRUE(JsonChecker(tracer.chrome_trace_json()).valid());
  tracer.clear();
}

TEST(Tracer, RankedThreadsGroupByPid) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  std::thread([&] {
    tracer.set_thread_rank(3);
    const obs::ScopedSpan span("obs_test:ranked");
  }).join();
  tracer.set_enabled(false);
  const std::string json = tracer.chrome_trace_json();
  // rank 3 -> pid 4 (0 is reserved for unranked threads).
  EXPECT_NE(json.find("\"pid\":4"), std::string::npos) << json;
  tracer.clear();
}

// ---------------------------------------------------------------------------
// EvalStats aggregation

TEST(EvalStats, AggregationSumsKernelsAndAttribution) {
  core::EvalStats a;
  a.kernel(core::Kernel::kNewview).calls = 3;
  a.kernel(core::Kernel::kNewview).sites = 300;
  a.kernel(core::Kernel::kNewview).seconds = 0.5;
  a.scaling_events = 2;
  a.compute_seconds = 1.0;
  a.comm_calls = 4;

  core::EvalStats b;
  b.kernel(core::Kernel::kNewview).calls = 1;
  b.kernel(core::Kernel::kNewview).sites = 100;
  b.kernel(core::Kernel::kEvaluate).calls = 7;
  b.scaling_events = 5;
  b.wait_seconds = 0.25;

  a += b;
  EXPECT_EQ(a.kernel(core::Kernel::kNewview).calls, 4);
  EXPECT_EQ(a.kernel(core::Kernel::kNewview).sites, 400);
  EXPECT_EQ(a.kernel(core::Kernel::kEvaluate).calls, 7);
  EXPECT_EQ(a.scaling_events, 7);
  EXPECT_DOUBLE_EQ(a.compute_seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.wait_seconds, 0.25);
  EXPECT_EQ(a.comm_calls, 4);
}

TEST(EvalStats, FormatListsEveryKernelRow) {
  core::EvalStats stats;
  stats.kernel(core::Kernel::kNewview).calls = 2;
  stats.kernel(core::Kernel::kNewview).sites = 1000;
  stats.kernel(core::Kernel::kNewview).seconds = 0.001;
  const std::string text = core::format_eval_stats(stats);
  for (int k = 0; k < core::kKernelCount; ++k) {
    EXPECT_NE(text.find(core::kernel_name(static_cast<core::Kernel>(k))), std::string::npos)
        << text;
  }
}

// ---------------------------------------------------------------------------
// Engine integration: the registry and the stats() API must agree

TEST(EngineMetrics, RegistryCountersMatchEvalStats) {
  auto& registry = obs::Registry::instance();
  const auto alignment = simulate::paper_dataset(500, 11, 12);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(1);
  tree::Tree tree = tree::parsimony_starting_tree(patterns, rng);
  core::LikelihoodEngine::Config config;
  config.metrics = obs::MetricsMode::kOn;
  core::LikelihoodEngine engine(patterns, model::GtrModel(model::GtrParams::jc69(0.8)), tree,
                                config);
  registry.reset();  // after construction: registration is setup-time
  engine.optimize_all_branches(tree.tip(0), 2);

  const core::EvalStats& stats = engine.stats();
  const std::string prefix =
      "plf." + simd::to_string(engine.isa()) + ".dense.";
  const struct {
    core::Kernel kernel;
    const char* name;
  } rows[] = {{core::Kernel::kNewview, "newview"},
              {core::Kernel::kEvaluate, "evaluate"},
              {core::Kernel::kDerivSum, "derivative_sum"},
              {core::Kernel::kDerivCore, "derivative_core"}};
  for (const auto& row : rows) {
    EXPECT_EQ(registry.value(registry.counter(prefix + row.name + ".calls")),
              stats.kernel(row.kernel).calls)
        << row.name;
    EXPECT_EQ(registry.value(registry.counter(prefix + row.name + ".sites")),
              stats.kernel(row.kernel).sites)
        << row.name;
    EXPECT_GT(stats.kernel(row.kernel).calls, 0) << row.name;
  }
  EXPECT_EQ(registry.value(registry.counter("plf.scaling_events")), stats.scaling_events);

  engine.reset_stats();
  EXPECT_EQ(engine.stats().kernel(core::Kernel::kNewview).calls, 0);
}

TEST(Report, GroupsKernelMetricsIntoRows) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  const auto calls = registry.counter("plf.avx2.dense.newview.calls");
  const auto sites = registry.counter("plf.avx2.dense.newview.sites");
  registry.add(calls, 12);
  registry.add(sites, 4800);
  const std::string report = obs::render_kernel_report();
  EXPECT_NE(report.find("avx2.dense.newview"), std::string::npos) << report;
  EXPECT_NE(report.find("12"), std::string::npos) << report;
}

}  // namespace
