// Tests for src/parallel: worker pool semantics and the fork-join evaluator
// (RAxML-Light PThreads scheme) against the serial engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "src/parallel/fork_join_evaluator.hpp"
#include "src/parallel/worker_pool.hpp"
#include "src/util/cancellation.hpp"
#include "src/util/error.hpp"
#include "src/search/spr_search.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/splits.hpp"
#include "tests/testutil.hpp"

namespace miniphi::parallel {
namespace {

TEST(WorkerPool, RunsTaskOnEveryWorker) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int thread_id) { hits[static_cast<std::size_t>(thread_id)]++; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  EXPECT_EQ(pool.region_count(), 1);
}

TEST(WorkerPool, ManySequentialRegions) {
  WorkerPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.run([&](int) { counter++; });
  }
  EXPECT_EQ(counter.load(), 600);
  EXPECT_EQ(pool.region_count(), 200);
}

TEST(WorkerPool, ReduceSumIsDeterministic) {
  WorkerPool pool(8);
  const double total = pool.run_reduce_sum([](int thread_id) { return 0.1 * (thread_id + 1); });
  EXPECT_DOUBLE_EQ(total, 0.1 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST(WorkerPool, SingleThreadPoolWorks) {
  WorkerPool pool(1);
  EXPECT_DOUBLE_EQ(pool.run_reduce_sum([](int) { return 2.5; }), 2.5);
}

TEST(WorkerPool, RejectsZeroThreads) { EXPECT_THROW(WorkerPool(0), miniphi::Error); }

TEST(WorkerPool, WorkerExceptionPropagatesToMaster) {
  WorkerPool pool(4);
  try {
    pool.run([](int thread_id) {
      if (thread_id == 2) throw miniphi::Error("worker 2 failed");
    });
    FAIL() << "expected the worker's exception from run()";
  } catch (const miniphi::Error& e) {
    EXPECT_STREQ(e.what(), "worker 2 failed");
  }
  // The region still joined: the pool is fully usable afterwards.
  std::atomic<int> counter{0};
  pool.run([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 4);
  EXPECT_EQ(pool.region_count(), 2);
}

TEST(WorkerPool, MasterExceptionPropagates) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run([](int thread_id) {
                 if (thread_id == 0) throw miniphi::Error("master failed");
               }),
               miniphi::Error);
  EXPECT_EQ(pool.region_count(), 1);
}

TEST(WorkerPool, LowestThreadIdExceptionWinsWhenSeveralThrow) {
  WorkerPool pool(4);
  try {
    pool.run([](int thread_id) {
      if (thread_id == 1 || thread_id == 3) {
        throw miniphi::Error("thread " + std::to_string(thread_id) + " failed");
      }
    });
    FAIL() << "expected an exception";
  } catch (const miniphi::Error& e) {
    EXPECT_STREQ(e.what(), "thread 1 failed");
  }
}

TEST(WorkerPool, ReduceSumPropagatesWorkerException) {
  WorkerPool pool(2);
  EXPECT_THROW((void)pool.run_reduce_sum([](int thread_id) -> double {
                 if (thread_id == 1) throw miniphi::Error("reduce failed");
                 return 1.0;
               }),
               miniphi::Error);
  EXPECT_DOUBLE_EQ(pool.run_reduce_sum([](int) { return 1.0; }), 2.0);
}

// --- Exception / cancellation interleaving ----------------------------------
//
// A cancelled job's siblings all throw CancelledError from the same token.
// The rethrow policy must surface the *informative* exception: a real
// failure beats a cancellation regardless of which thread id carried it.

TEST(WorkerPool, ThrowingTaskBesideCancelledSiblingPrefersTheRealError) {
  WorkerPool pool(4);
  CancelToken token;
  token.cancel();
  try {
    pool.run([&](int thread_id) {
      // Thread 1 hits a genuine failure; 0, 2 and 3 observe the cancel.
      // Lowest-id-wins alone would report the cancellation and bury the
      // real error.
      if (thread_id == 1) throw miniphi::Error("real failure");
      token.check();
    });
    FAIL() << "expected an exception";
  } catch (const CancelledError&) {
    FAIL() << "cancellation masked the real failure";
  } catch (const miniphi::Error& e) {
    EXPECT_STREQ(e.what(), "real failure");
  }
  // The region joined cleanly: the pool serves the next job.
  std::atomic<int> counter{0};
  pool.run([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 4);
}

TEST(WorkerPool, AllWorkersCancelledRethrowsTheCancellation) {
  WorkerPool pool(3);
  {
    CancelToken token;
    token.cancel();
    EXPECT_THROW(pool.run([&](int) { token.check(); }), CancelledError);
  }
  {
    // An already-expired deadline must surface as a deadline-flavoured
    // CancelledError so the service maps it to kDeadlineExceeded.
    CancelToken token;
    token.set_deadline_after(std::chrono::nanoseconds(-1));
    try {
      pool.run([&](int) { token.check(); });
      FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
      EXPECT_TRUE(e.deadline_expired());
    }
  }
  EXPECT_DOUBLE_EQ(pool.run_reduce_sum([](int) { return 1.0; }), 3.0);
}

TEST(WorkerPool, CancelledSiblingsDoNotDeadlockOrDropTheException) {
  WorkerPool pool(4);
  // Rotate the failing thread so every (thrower, cancelled-sibling)
  // interleaving is exercised; any dropped exception or missed join shows
  // up as a wrong error or a hang.
  for (int round = 0; round < 50; ++round) {
    CancelToken token;
    token.cancel();
    const int thrower = round % 4;
    bool caught_real = false;
    try {
      pool.run([&](int thread_id) {
        if (thread_id == thrower) throw miniphi::Error("round failure");
        token.check();
      });
    } catch (const CancelledError&) {
      // fall through: caught_real stays false and the assert names the round
    } catch (const miniphi::Error& e) {
      caught_real = std::string(e.what()) == "round failure";
    }
    ASSERT_TRUE(caught_real) << "round " << round << " thrower " << thrower;
  }
  std::atomic<int> counter{0};
  pool.run([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 4);
}

class ForkJoinFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    alignment_ = std::make_unique<bio::Alignment>(testutil::random_alignment(13, 500, rng));
    patterns_ = std::make_unique<bio::PatternSet>(bio::compress_patterns(*alignment_));
    model_ = std::make_unique<model::GtrModel>(testutil::random_gtr_params(rng));
    tree_ = std::make_unique<tree::Tree>(tree::Tree::random(13, rng));
  }

  std::unique_ptr<bio::Alignment> alignment_;
  std::unique_ptr<bio::PatternSet> patterns_;
  std::unique_ptr<model::GtrModel> model_;
  std::unique_ptr<tree::Tree> tree_;
};

TEST_F(ForkJoinFixture, LikelihoodMatchesSerialEngine) {
  core::LikelihoodEngine serial(*patterns_, *model_, *tree_);
  const double expected = serial.log_likelihood(tree_->tip(0));
  for (const int workers : {1, 2, 3, 7}) {
    WorkerPool pool(workers);
    ForkJoinEvaluator evaluator(pool, *patterns_, *model_, *tree_);
    const double actual = evaluator.log_likelihood(tree_->tip(0));
    EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-11 + 1e-9) << "workers=" << workers;
  }
}

TEST_F(ForkJoinFixture, DerivativesMatchSerialEngine) {
  core::LikelihoodEngine serial(*patterns_, *model_, *tree_);
  WorkerPool pool(4);
  ForkJoinEvaluator evaluator(pool, *patterns_, *model_, *tree_);
  tree::Slot* edge = tree_->tip(3);
  serial.prepare_derivatives(edge);
  evaluator.prepare_derivatives(edge);
  for (const double z : {0.01, 0.1, 0.5}) {
    const auto [e1, e2] = serial.derivatives(z);
    const auto [a1, a2] = evaluator.derivatives(z);
    EXPECT_NEAR(a1, e1, std::abs(e1) * 1e-10 + 1e-8);
    EXPECT_NEAR(a2, e2, std::abs(e2) * 1e-10 + 1e-8);
  }
}

TEST_F(ForkJoinFixture, BranchOptimizationMatchesSerial) {
  tree::Tree tree_a(*tree_);
  tree::Tree tree_b(*tree_);
  core::LikelihoodEngine serial(*patterns_, *model_, tree_a);
  WorkerPool pool(3);
  ForkJoinEvaluator evaluator(pool, *patterns_, *model_, tree_b);

  const double lnl_a = serial.optimize_all_branches(tree_a.tip(0), 3);
  const double lnl_b = evaluator.optimize_all_branches(tree_b.tip(0), 3);
  EXPECT_NEAR(lnl_a, lnl_b, std::abs(lnl_a) * 1e-9 + 1e-6);

  // Branch lengths should agree too.
  for (int i = 0; i < tree_a.slot_count(); ++i) {
    EXPECT_NEAR(tree_a.slot(i)->length, tree_b.slot(i)->length, 1e-7);
  }
}

TEST_F(ForkJoinFixture, FullSearchMatchesSerialSearch) {
  tree::Tree tree_a(*tree_);
  tree::Tree tree_b(*tree_);
  search::SearchOptions options;
  options.optimize_model = false;
  options.max_rounds = 2;

  core::LikelihoodEngine serial(*patterns_, *model_, tree_a);
  const auto result_a = search::run_tree_search(serial, tree_a, options);

  WorkerPool pool(4);
  ForkJoinEvaluator evaluator(pool, *patterns_, *model_, tree_b);
  const auto result_b = search::run_tree_search(evaluator, tree_b, options);

  EXPECT_EQ(tree::robinson_foulds(tree_a, tree_b), 0);
  EXPECT_NEAR(result_a.log_likelihood, result_b.log_likelihood,
              std::abs(result_a.log_likelihood) * 1e-8 + 1e-5);
  EXPECT_GT(pool.region_count(), 100);  // two syncs per kernel region, counted
}

TEST_F(ForkJoinFixture, StatsAggregateAcrossWorkers) {
  WorkerPool pool(4);
  ForkJoinEvaluator evaluator(pool, *patterns_, *model_, *tree_);
  (void)evaluator.log_likelihood(tree_->tip(0));
  const auto stat = evaluator.total_stats(core::Kernel::kNewview);
  EXPECT_EQ(stat.calls, 4 * tree_->inner_count());
  EXPECT_EQ(stat.sites, static_cast<std::int64_t>(patterns_->pattern_count()) *
                            tree_->inner_count());
}

TEST_F(ForkJoinFixture, RejectsMoreWorkersThanPatterns) {
  io::SequenceSet records = {{"a", "AC"}, {"b", "AC"}, {"c", "AC"}};
  bio::Alignment tiny(records);
  const auto patterns = bio::compress_patterns(tiny);  // 1 pattern
  Rng rng(1);
  tree::Tree tree = tree::Tree::random(3, rng);
  WorkerPool pool(4);
  EXPECT_THROW(ForkJoinEvaluator(pool, patterns, *model_, tree), miniphi::Error);
}

}  // namespace
}  // namespace miniphi::parallel
