// Tests for src/core/partitioned: multi-gene alignments with per-partition
// models and linked branch lengths.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/partitioned.hpp"
#include "src/parallel/pool_parallel_for.hpp"
#include "src/parallel/worker_pool.hpp"
#include "src/search/model_optimizer.hpp"
#include "src/search/spr_search.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

TEST(Partitions, EvenSplitCoversEverySiteOnce) {
  const auto specs = even_partitions(1003, 7);
  ASSERT_EQ(specs.size(), 7u);
  std::int64_t covered = 0;
  for (std::size_t p = 0; p < specs.size(); ++p) {
    EXPECT_EQ(specs[p].begin, (p == 0) ? 0 : specs[p - 1].end);
    EXPECT_GT(specs[p].end, specs[p].begin);
    covered += specs[p].end - specs[p].begin;
  }
  EXPECT_EQ(specs.back().end, 1003);
  EXPECT_EQ(covered, 1003);
  EXPECT_THROW(even_partitions(3, 5), Error);
}

class PartitionedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    alignment_ = std::make_unique<bio::Alignment>(testutil::random_alignment(10, 600, rng));
    model_ = std::make_unique<model::GtrModel>(testutil::random_gtr_params(rng));
    tree_ = std::make_unique<tree::Tree>(tree::Tree::random(10, rng));
  }

  std::unique_ptr<bio::Alignment> alignment_;
  std::unique_ptr<model::GtrModel> model_;
  std::unique_ptr<tree::Tree> tree_;
};

TEST_F(PartitionedFixture, SinglePartitionEqualsPlainEngine) {
  const auto patterns = bio::compress_patterns(*alignment_);
  LikelihoodEngine plain(patterns, *model_, *tree_);
  const double expected = plain.log_likelihood(tree_->tip(0));

  const auto specs = even_partitions(static_cast<std::int64_t>(alignment_->site_count()), 1);
  PartitionedEvaluator evaluator(*alignment_, specs, *model_, *tree_);
  EXPECT_EQ(evaluator.partition_count(), 1);
  EXPECT_NEAR(evaluator.log_likelihood(tree_->tip(0)), expected,
              std::abs(expected) * 1e-11 + 1e-9);
}

TEST_F(PartitionedFixture, ManyPartitionsWithSharedModelEqualUnpartitioned) {
  // With identical models in every partition, the partitioned likelihood
  // must equal the unpartitioned one, for any partition count.
  const auto patterns = bio::compress_patterns(*alignment_);
  LikelihoodEngine plain(patterns, *model_, *tree_);
  const double expected = plain.log_likelihood(tree_->tip(0));

  for (const int count : {2, 3, 8, 25}) {
    const auto specs =
        even_partitions(static_cast<std::int64_t>(alignment_->site_count()), count);
    PartitionedEvaluator evaluator(*alignment_, specs, *model_, *tree_);
    EXPECT_NEAR(evaluator.log_likelihood(tree_->tip(0)), expected,
                std::abs(expected) * 1e-11 + 1e-9)
        << count << " partitions";
  }
}

TEST_F(PartitionedFixture, SiteRepeatsFlowThroughToEveryPartitionEngine) {
  // The engine config (including site_repeats) is forwarded verbatim to each
  // partition engine, every partition keeps its own repeat maps, and the
  // summed likelihood matches the dense partitioned evaluator exactly.
  const auto specs = even_partitions(static_cast<std::int64_t>(alignment_->site_count()), 3);
  PartitionedEvaluator dense(*alignment_, specs, *model_, *tree_);

  LikelihoodEngine::Config config;
  config.site_repeats = true;
  PartitionedEvaluator repeats(*alignment_, specs, *model_, *tree_, config);

  const double want = dense.log_likelihood(tree_->tip(0));
  const double got = repeats.log_likelihood(tree_->tip(0));
  EXPECT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-10);

  for (int p = 0; p < repeats.partition_count(); ++p) {
    auto& engine = repeats.partition_engine(p);
    EXPECT_TRUE(engine.site_repeats());
    EXPECT_LE(engine.unique_site_ratio(), 1.0);
    EXPECT_FALSE(dense.partition_engine(p).site_repeats());
  }

  // Linked-branch optimization goes through invalidate_branch on every
  // partition engine; repeat maps must survive it and agree with dense.
  tree::Tree tree_a(*tree_);
  tree::Tree tree_b(*tree_);
  PartitionedEvaluator dense_opt(*alignment_, specs, *model_, tree_a);
  PartitionedEvaluator repeats_opt(*alignment_, specs, *model_, tree_b, config);
  const double lnl_a = dense_opt.optimize_all_branches(tree_a.tip(0), 2);
  const double lnl_b = repeats_opt.optimize_all_branches(tree_b.tip(0), 2);
  EXPECT_NEAR(lnl_a, lnl_b, std::abs(lnl_a) * 1e-9 + 1e-6);
}

TEST_F(PartitionedFixture, BranchOptimizationMatchesUnpartitioned) {
  const auto patterns = bio::compress_patterns(*alignment_);
  tree::Tree tree_a(*tree_);
  tree::Tree tree_b(*tree_);
  LikelihoodEngine plain(patterns, *model_, tree_a);
  const auto specs = even_partitions(static_cast<std::int64_t>(alignment_->site_count()), 4);
  PartitionedEvaluator partitioned(*alignment_, specs, *model_, tree_b);

  const double lnl_a = plain.optimize_all_branches(tree_a.tip(0), 3);
  const double lnl_b = partitioned.optimize_all_branches(tree_b.tip(0), 3);
  EXPECT_NEAR(lnl_a, lnl_b, std::abs(lnl_a) * 1e-9 + 1e-6);
  for (int i = 0; i < tree_a.slot_count(); ++i) {
    EXPECT_NEAR(tree_a.slot(i)->length, tree_b.slot(i)->length, 1e-7);
  }
}

TEST_F(PartitionedFixture, PerPartitionModelsImproveHeterogeneousData) {
  // Simulate two genes under very different GTR parameters on one tree;
  // per-partition model optimization must beat a single shared model.
  Rng rng(99);
  tree::Tree truth = simulate::yule_tree(8, rng, 0.6);

  model::GtrParams fast;
  fast.alpha = 3.0;
  fast.exchangeabilities = {1.0, 8.0, 1.0, 1.0, 8.0, 1.0};
  model::GtrParams slow;
  slow.alpha = 0.3;
  slow.exchangeabilities = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  slow.frequencies = {0.4, 0.1, 0.1, 0.4};

  simulate::SimulationOptions sim;
  sim.sites = 1500;
  const auto gene_a = simulate::simulate_alignment(truth, model::GtrModel(fast), sim, rng);
  const auto gene_b = simulate::simulate_alignment(truth, model::GtrModel(slow), sim, rng);

  // Concatenate the two genes.
  std::vector<std::string> names;
  std::vector<std::vector<bio::DnaCode>> rows;
  for (std::size_t t = 0; t < gene_a.alignment.taxon_count(); ++t) {
    names.push_back(gene_a.alignment.taxon_name(t));
    std::vector<bio::DnaCode> row(gene_a.alignment.row(t).begin(),
                                  gene_a.alignment.row(t).end());
    row.insert(row.end(), gene_b.alignment.row(t).begin(), gene_b.alignment.row(t).end());
    rows.push_back(std::move(row));
  }
  const bio::Alignment concatenated(std::move(names), std::move(rows));

  const std::vector<PartitionSpec> specs = {{"fast_gene", 0, 1500}, {"slow_gene", 1500, 3000}};
  tree::Tree tree_shared(truth);
  tree::Tree tree_split(truth);
  const model::GtrModel start(model::GtrParams::jc69());

  // Shared model: one engine over everything, full model optimization.
  const auto patterns = bio::compress_patterns(concatenated);
  LikelihoodEngine shared(patterns, start, tree_shared);
  (void)shared.optimize_all_branches(tree_shared.tip(0), 4);
  const double shared_lnl =
      search::optimize_model(shared, tree_shared.tip(0)).log_likelihood;

  // Partitioned: per-partition model optimization.
  PartitionedEvaluator split(concatenated, specs, start, tree_split);
  (void)split.optimize_all_branches(tree_split.tip(0), 4);
  double split_lnl = 0.0;
  for (int p = 0; p < split.partition_count(); ++p) {
    split_lnl +=
        search::optimize_model(split.partition_engine(p), tree_split.tip(0)).log_likelihood;
  }
  EXPECT_GT(split_lnl, shared_lnl + 20.0)
      << "per-partition models should fit heterogeneous genes decisively better";

  // And the recovered per-partition alphas should bracket the truth.
  EXPECT_GT(split.partition_engine(0).model().params().alpha, 1.0);  // fast gene: high alpha
  EXPECT_LT(split.partition_engine(1).model().params().alpha, 1.0);  // slow gene: low alpha
}

TEST_F(PartitionedFixture, SearchRunsOnPartitionedEvaluator) {
  Rng rng(55);
  const auto specs = even_partitions(static_cast<std::int64_t>(alignment_->site_count()), 3);
  tree::Tree tree = tree::Tree::random(10, rng);
  PartitionedEvaluator evaluator(*alignment_, specs, *model_, tree);
  search::SearchOptions options;
  options.optimize_model = false;
  options.max_rounds = 2;
  const auto result = search::run_tree_search(evaluator, tree, options);
  EXPECT_LT(result.log_likelihood, 0.0);
  tree.validate();
  // Monotone trajectory as always.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i], result.trajectory[i - 1] - 1e-6);
  }
}

TEST_F(PartitionedFixture, MergedScheduleVariantsAreBitIdentical) {
  // The merged cross-partition queue must produce bit-identical likelihoods
  // under every dispatch schedule: the kernels run on the same inputs and
  // every reduction sums in fixed partition order, so no tolerance applies.
  const auto specs =
      even_partitions(static_cast<std::int64_t>(alignment_->site_count()), 8);
  PartitionedEvaluator reference(*alignment_, specs, *model_, *tree_);
  const double expected = reference.log_likelihood(tree_->tip(0));
  // The serial reference already went through the merged queue.
  EXPECT_EQ(reference.merged_plan_counters().traversals, 1);
  EXPECT_EQ(reference.merged_plan_counters().ops, 8 * tree_->inner_count());
  EXPECT_EQ(reference.merged_plan_counters().regions, 0);  // no ParallelFor

  parallel::WorkerPool pool(4);
  parallel::PoolParallelFor parallel_for(pool);
  for (const auto schedule : {PlanSchedule::kWavefront, PlanSchedule::kPerNode}) {
    PartitionedEvaluator evaluator(*alignment_, specs, *model_, *tree_);
    evaluator.set_parallel_for(&parallel_for, schedule);
    EXPECT_EQ(evaluator.log_likelihood(tree_->tip(0)), expected);

    const MergedPlanCounters& counters = evaluator.merged_plan_counters();
    EXPECT_EQ(counters.traversals, 1);
    EXPECT_EQ(counters.ops, 8 * tree_->inner_count());
    if (schedule == PlanSchedule::kWavefront) {
      // One region per dependency level plus one for the evaluate kernels.
      EXPECT_EQ(counters.regions, counters.levels + 1);
    } else {
      // Classical fork-join: one region per tree node plus the root phase.
      EXPECT_EQ(counters.regions, tree_->inner_count() + 1);
      EXPECT_GE(counters.regions, counters.levels + 1);
    }
  }
}

TEST_F(PartitionedFixture, BranchOptimizationIsScheduleInvariant) {
  // Newton branch optimization drives prepare_derivatives/derivatives through
  // the same merged machinery; optimized lengths and the final likelihood
  // must be bit-identical across schedules and thread counts.
  const auto specs =
      even_partitions(static_cast<std::int64_t>(alignment_->site_count()), 4);
  tree::Tree tree_serial(*tree_);
  PartitionedEvaluator serial(*alignment_, specs, *model_, tree_serial);
  const double expected = serial.optimize_all_branches(tree_serial.tip(0), 2);

  parallel::WorkerPool pool(3);
  parallel::PoolParallelFor parallel_for(pool);
  for (const auto schedule : {PlanSchedule::kWavefront, PlanSchedule::kPerNode}) {
    tree::Tree tree(*tree_);
    PartitionedEvaluator evaluator(*alignment_, specs, *model_, tree);
    evaluator.set_parallel_for(&parallel_for, schedule);
    EXPECT_EQ(evaluator.optimize_all_branches(tree.tip(0), 2), expected);
    for (int i = 0; i < tree.slot_count(); ++i) {
      EXPECT_EQ(tree.slot(i)->length, tree_serial.slot(i)->length);
    }
  }
}

TEST_F(PartitionedFixture, RejectsInvalidRanges) {
  const model::GtrModel model(model::GtrParams::jc69());
  const std::vector<PartitionSpec> empty = {};
  EXPECT_THROW(PartitionedEvaluator(*alignment_, empty, model, *tree_), Error);
  const std::vector<PartitionSpec> bad = {{"x", 10, 5}};
  EXPECT_THROW(PartitionedEvaluator(*alignment_, bad, model, *tree_), Error);
  const std::vector<PartitionSpec> overflow = {{"x", 0, 100000}};
  EXPECT_THROW(PartitionedEvaluator(*alignment_, overflow, model, *tree_), Error);
}

}  // namespace
}  // namespace miniphi::core
