// Tests for src/platform: Table I data integrity, kernel profiles, and the
// qualitative predictions of the cost model (the paper's headline trends
// must emerge from the mechanisms, not be hard-coded).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/platform/cost_model.hpp"
#include "src/platform/spec.hpp"

namespace miniphi::platform {
namespace {

using core::TraceKernel;

TEST(Spec, Table1DataMatchesPaper) {
  const auto e5_2680 = xeon_e5_2680();
  EXPECT_DOUBLE_EQ(e5_2680.peak_dp_gflops, 346.0);
  EXPECT_EQ(e5_2680.cores, 16);
  EXPECT_DOUBLE_EQ(e5_2680.memory_bandwidth_gbs, 102.4);
  EXPECT_DOUBLE_EQ(e5_2680.max_tdp_watts, 260.0);
  EXPECT_DOUBLE_EQ(e5_2680.price_usd, 3486.0);

  const auto phi = xeon_phi_5110p();
  EXPECT_DOUBLE_EQ(phi.peak_dp_gflops, 1074.0);
  EXPECT_EQ(phi.cores, 60);
  EXPECT_DOUBLE_EQ(phi.clock_ghz, 1.053);
  EXPECT_DOUBLE_EQ(phi.memory_gb, 8.0);
  EXPECT_DOUBLE_EQ(phi.memory_bandwidth_gbs, 320.0);
  EXPECT_EQ(phi.kernel_workers, 236);  // 2 ranks × 118 threads

  const auto e5_2630 = xeon_e5_2630();
  EXPECT_DOUBLE_EQ(e5_2630.peak_dp_gflops, 220.0);
  EXPECT_DOUBLE_EQ(e5_2630.price_usd, 1224.0);

  EXPECT_EQ(table1_platforms().size(), 5u);
  EXPECT_FALSE(format_table1().empty());
  EXPECT_FALSE(format_table2().empty());
}

TEST(Profile, NewviewCountsDependOnTipness) {
  const auto inner = kernel_profile(TraceKernel::kNewview, false, false);
  const auto tip_tip = kernel_profile(TraceKernel::kNewview, true, true);
  const auto mixed = kernel_profile(TraceKernel::kNewview, true, false);
  // Inner children add a 128-flop transform each and a 132-byte read each.
  EXPECT_DOUBLE_EQ(inner.flops, 400.0);
  EXPECT_DOUBLE_EQ(tip_tip.flops, 144.0);
  EXPECT_DOUBLE_EQ(mixed.flops, 272.0);
  EXPECT_GT(inner.bytes_read, tip_tip.bytes_read);
  EXPECT_DOUBLE_EQ(inner.bytes_written, 132.0);
}

TEST(Profile, DerivSumIsPureStreaming) {
  const auto profile = kernel_profile(TraceKernel::kDerivSum, false, false);
  EXPECT_DOUBLE_EQ(profile.flops, 16.0);
  EXPECT_DOUBLE_EQ(profile.bytes_read, 256.0);
  EXPECT_DOUBLE_EQ(profile.bytes_written, 128.0);
}

core::KernelTrace single_call_trace(TraceKernel kernel, std::int64_t sites) {
  core::KernelTrace trace;
  trace.record(kernel, false, false, sites);
  return trace;
}

TEST(CostModel, LargeAlignmentKernelSpeedupsMatchFigure3) {
  // Figure 3: per-kernel MIC speedups vs the 2S E5-2680 at full-run scale:
  // newview ≈2.0, evaluate ≈1.9, derivativeSum ≈2.8, derivativeCore ≈2.0.
  const auto cpu = config_e5_2680();
  const auto mic = config_phi_single();
  const std::int64_t sites = 2'000'000;

  const auto speedup = [&](TraceKernel kernel) {
    const auto trace = single_call_trace(kernel, sites);
    return simulate_trace(trace, cpu).total_seconds / simulate_trace(trace, mic).total_seconds;
  };

  EXPECT_NEAR(speedup(TraceKernel::kNewview), 2.0, 0.25);
  EXPECT_NEAR(speedup(TraceKernel::kEvaluate), 1.9, 0.25);
  EXPECT_NEAR(speedup(TraceKernel::kDerivSum), 2.8, 0.35);
  EXPECT_NEAR(speedup(TraceKernel::kDerivCore), 2.0, 0.25);
}

TEST(CostModel, DerivSumGainsMostFromStreamingStores) {
  // The MIC advantage on derivativeSum must exceed newview's: the paper
  // attributes this to the pure element-wise product + streaming stores.
  const auto cpu = config_e5_2680();
  const auto mic = config_phi_single();
  const std::int64_t sites = 1'000'000;
  const auto ratio = [&](TraceKernel kernel) {
    const auto trace = single_call_trace(kernel, sites);
    return simulate_trace(trace, cpu).total_seconds / simulate_trace(trace, mic).total_seconds;
  };
  EXPECT_GT(ratio(TraceKernel::kDerivSum), ratio(TraceKernel::kNewview) + 0.3);
}

TEST(CostModel, MicLosesOnSmallAlignments) {
  // Section VI-B2: at 10 K sites the CPU wins by ~3×; crossover ≈ 100 K.
  const auto cpu = config_e5_2680();
  const auto mic = config_phi_single();
  const auto ratio_at = [&](std::int64_t sites) {
    core::KernelTrace trace;
    // A representative call mix of one search step (heavy on newview from
    // SPR scanning, many derivativeCore calls from Newton iterations).
    for (int i = 0; i < 10; ++i) trace.record(TraceKernel::kNewview, false, false, sites);
    for (int i = 0; i < 3; ++i) trace.record(TraceKernel::kEvaluate, false, false, sites);
    for (int i = 0; i < 2; ++i) trace.record(TraceKernel::kDerivSum, false, false, sites);
    for (int i = 0; i < 8; ++i) trace.record(TraceKernel::kDerivCore, false, false, sites);
    return simulate_trace(trace, cpu).total_seconds / simulate_trace(trace, mic).total_seconds;
  };
  EXPECT_LT(ratio_at(10'000), 0.45);          // MIC ≥ ~2× slower at 10 K
  EXPECT_NEAR(ratio_at(100'000), 1.0, 0.25);  // crossover region
  EXPECT_GT(ratio_at(1'000'000), 1.7);        // plateau ≈ 2×
  EXPECT_GT(ratio_at(4'000'000), ratio_at(1'000'000) - 0.05);  // still rising/stable
}

TEST(CostModel, DualCardScalingIsSubLinearAndSizeDependent) {
  // Figure 4: 2-MIC vs 1-MIC speedup grows with alignment size toward ~1.84
  // but never reaches 2; on tiny alignments adding a card *hurts*.
  const auto single = config_phi_single();
  const auto dual = config_phi_dual();
  const auto speedup_at = [&](std::int64_t sites) {
    core::KernelTrace trace;
    for (int i = 0; i < 10; ++i) trace.record(TraceKernel::kNewview, false, false, sites);
    for (int i = 0; i < 3; ++i) trace.record(TraceKernel::kEvaluate, false, false, sites);
    for (int i = 0; i < 2; ++i) trace.record(TraceKernel::kDerivSum, false, false, sites);
    for (int i = 0; i < 8; ++i) trace.record(TraceKernel::kDerivCore, false, false, sites);
    return simulate_trace(trace, single).total_seconds /
           simulate_trace(trace, dual).total_seconds;
  };
  EXPECT_LT(speedup_at(10'000), 1.0);
  EXPECT_GT(speedup_at(4'000'000), 1.6);
  EXPECT_LT(speedup_at(4'000'000), 2.0);
  EXPECT_GT(speedup_at(4'000'000), speedup_at(250'000));
}

TEST(CostModel, OffloadModeRoughlyDoublesSmallKernelRuns) {
  // Section V-C: per-invocation offload latency is comparable to the kernel
  // compute time, which made the offload design ≥2× slower than native.
  auto native = config_phi_single();
  auto offload = native;
  offload.offload_mode = true;

  core::KernelTrace trace;
  for (int i = 0; i < 1000; ++i) trace.record(TraceKernel::kNewview, false, false, 10'000);
  const double t_native = simulate_trace(trace, native).total_seconds;
  const double t_offload = simulate_trace(trace, offload).total_seconds;
  EXPECT_GT(t_offload / t_native, 1.25);
  EXPECT_NEAR(simulate_trace(trace, offload).offload_seconds, 1000 * 300e-6, 1e-9);
}

TEST(CostModel, CpuPlatformsDifferByBandwidthOnly) {
  // Table III: the two CPU systems differ by only 10-16% (0.84× ratio).
  const auto big = config_e5_2680();
  const auto small = config_e5_2630();
  const auto trace = single_call_trace(TraceKernel::kNewview, 1'000'000);
  const double ratio =
      simulate_trace(trace, big).total_seconds / simulate_trace(trace, small).total_seconds;
  EXPECT_NEAR(ratio, 85.2 / 102.4, 0.02);
}

TEST(CostModel, EnergyFollowsPaperFormula) {
  const auto cpu = config_e5_2680();
  EXPECT_NEAR(energy_wh(cpu, 3600.0), 260.0, 1e-9);
  const auto dual = config_phi_dual();
  EXPECT_NEAR(energy_wh(dual, 1800.0), 225.0, 1e-9);  // 450 W × 0.5 h
}

TEST(CostModel, TraceScalingPreservesCallStructure) {
  core::KernelTrace trace;
  trace.record(TraceKernel::kNewview, true, false, 1000);
  trace.record(TraceKernel::kEvaluate, false, false, 1000);
  const auto scaled = trace.scaled_to(1000, 250'000);
  ASSERT_EQ(scaled.calls.size(), 2u);
  EXPECT_EQ(scaled.calls[0].sites, 250'000);
  EXPECT_TRUE(scaled.calls[0].left_tip);
  EXPECT_EQ(scaled.call_count(TraceKernel::kNewview), 1);
  EXPECT_EQ(scaled.total_sites(TraceKernel::kEvaluate), 250'000);
}

TEST(CostModel, TraceScalingCarriesRoundingAcrossCalls) {
  // Regression: per-call rounding used to drift by up to one site per call,
  // so scaling 3000 one-site calls by 10000/3000 summed to 3000 (every call
  // rounded down) instead of 10000.  The error-carry makes totals exact.
  core::KernelTrace trace;
  for (int i = 0; i < 3000; ++i) trace.record(TraceKernel::kNewview, false, false, 1);
  const auto scaled = trace.scaled_to(3000, 10'000);
  EXPECT_EQ(scaled.total_sites(TraceKernel::kNewview), 10'000);
  EXPECT_EQ(scaled.total_sites_represented(TraceKernel::kNewview), 10'000);
  // Carries are per kernel: interleaving other kernels must not disturb it.
  core::KernelTrace mixed;
  for (int i = 0; i < 700; ++i) {
    mixed.record(TraceKernel::kNewview, false, false, 3);
    mixed.record(TraceKernel::kEvaluate, false, false, 1);
  }
  const auto mixed_scaled = mixed.scaled_to(1000, 777);
  EXPECT_EQ(mixed_scaled.total_sites(TraceKernel::kNewview), std::llround(700 * 3 * 0.777));
  EXPECT_EQ(mixed_scaled.total_sites(TraceKernel::kEvaluate), std::llround(700 * 0.777));
}

TEST(CostModel, TraceScalingRejectsEmptySource) {
  core::KernelTrace trace;
  trace.record(TraceKernel::kNewview, false, false, 100);
  EXPECT_THROW((void)trace.scaled_to(0, 1000), miniphi::Error);
  EXPECT_THROW((void)trace.scaled_to(-5, 1000), miniphi::Error);
  EXPECT_THROW((void)trace.scaled_to(100, -1), miniphi::Error);
}

TEST(CostModel, TraceRecordsRepresentedSitesSeparately) {
  core::KernelTrace trace;
  trace.record(TraceKernel::kNewview, true, false, 250, 1000);  // repeat path
  trace.record(TraceKernel::kNewview, true, false, 500);        // dense path
  EXPECT_EQ(trace.total_sites(TraceKernel::kNewview), 750);
  EXPECT_EQ(trace.total_sites_represented(TraceKernel::kNewview), 1500);
}

TEST(CostModel, SyncAccountingSeparatesComputeAndSync) {
  const auto mic = config_phi_single();
  core::KernelTrace trace;
  trace.record(TraceKernel::kEvaluate, false, false, 1000);
  const auto result = simulate_trace(trace, mic);
  EXPECT_GT(result.sync_seconds, 0.0);
  EXPECT_GT(result.compute_seconds, 0.0);
  EXPECT_NEAR(result.total_seconds, result.compute_seconds + result.sync_seconds, 1e-12);
}

// --- Stream planning (PR 8) ---

TEST(StreamPlanner, IsaChoiceIsWidthMonotonicInPartitionSize) {
  // Tiny partitions cannot amortize a wide vector unit; huge ones can.
  EXPECT_EQ(choose_partition_isa(8, simd::Isa::kAvx512), simd::Isa::kScalar);
  EXPECT_EQ(choose_partition_isa(400, simd::Isa::kAvx512), simd::Isa::kAvx2);
  EXPECT_EQ(choose_partition_isa(100000, simd::Isa::kAvx512), simd::Isa::kAvx512);
  // Widths never shrink as partitions grow.
  int previous = 0;
  for (const std::int64_t patterns : {1, 10, 50, 150, 400, 900, 4000, 100000}) {
    const int width = static_cast<int>(choose_partition_isa(patterns, simd::Isa::kAvx512));
    EXPECT_GE(width, previous) << "at " << patterns << " patterns";
    previous = width;
  }
}

TEST(StreamPlanner, IsaChoiceNeverExceedsWidestSupported) {
  EXPECT_EQ(choose_partition_isa(100000, simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_EQ(choose_partition_isa(100000, simd::Isa::kAvx2), simd::Isa::kAvx2);
}

TEST(StreamPlanner, LptBalancesModeledLoadAcrossStreams) {
  // One huge partition and several small ones: LPT must isolate the big one
  // and spread the rest, not round-robin by index.
  const std::vector<std::int64_t> patterns = {20000, 300, 300, 300, 300, 300, 300};
  const auto plan = plan_partition_streams(patterns, 2, simd::Isa::kAvx512);
  ASSERT_EQ(plan.stream_count, 2);
  ASSERT_EQ(plan.partition_stream.size(), patterns.size());
  const int big_stream = plan.partition_stream[0];
  for (std::size_t p = 1; p < patterns.size(); ++p) {
    EXPECT_NE(plan.partition_stream[p], big_stream) << "small partition " << p;
  }
  // Deterministic: same input, same plan.
  const auto again = plan_partition_streams(patterns, 2, simd::Isa::kAvx512);
  EXPECT_EQ(again.partition_stream, plan.partition_stream);
  EXPECT_EQ(again.partition_isa, plan.partition_isa);
}

TEST(StreamPlanner, StreamCountClampsToPartitionCountAndEveryStreamIsUsed) {
  const std::vector<std::int64_t> patterns = {500, 600, 700};
  const auto plan = plan_partition_streams(patterns, 8, simd::Isa::kAvx512);
  EXPECT_EQ(plan.stream_count, 3);
  std::vector<bool> used(static_cast<std::size_t>(plan.stream_count), false);
  for (const int s : plan.partition_stream) used[static_cast<std::size_t>(s)] = true;
  for (std::size_t s = 0; s < used.size(); ++s) EXPECT_TRUE(used[s]) << "stream " << s;
}

TEST(StreamPlanner, MixedJobUsesMixedBackends) {
  // The headline PR 8 scenario: small and large partitions in one job get
  // different back-ends from the same plan.
  const std::vector<std::int64_t> patterns = {40, 40, 8000, 8000};
  const auto plan = plan_partition_streams(patterns, 4, simd::Isa::kAvx512);
  EXPECT_EQ(plan.partition_isa[0], simd::Isa::kScalar);
  EXPECT_EQ(plan.partition_isa[2], simd::Isa::kAvx512);
}

}  // namespace
}  // namespace miniphi::platform
