// Tests for the silent-data-corruption defense (DESIGN.md §10): CLA
// checksums with plan-driven self-healing recompute in every engine, the
// non-finite-output sentinels with bounded retry and escalation, partition-
// level healing, the cross-rank agreement vote in the distributed
// evaluator, and the deterministic kFlipClaBits / kCorruptReduction fault
// injections end-to-end through the ExaML driver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/core/cat/cat_engine.hpp"
#include "src/core/engine.hpp"
#include "src/core/general/general_engine.hpp"
#include "src/core/partitioned.hpp"
#include "src/core/sdc.hpp"
#include "src/examl/driver.hpp"
#include "src/minimpi/faults.hpp"
#include "src/obs/report.hpp"
#include "src/simulate/simulate.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::isa_supported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::isa_supported(simd::Isa::kAvx512)) isas.push_back(simd::Isa::kAvx512);
  return isas;
}

// The fused verify path (DESIGN.md §10) relies on two properties of the
// lane-structured checksum: every back-end folds the same value, and
// split-range accumulation matches one whole-range sweep (the engine
// checksums in kSdcChunkSites chunks interleaved with kernel execution).
TEST(ClaChecksum, BackendsAndChunkingAgreeWithScalarReference) {
  constexpr std::int64_t kSites = 1237;  // deliberately not a multiple of 8
  std::vector<double> cla(static_cast<std::size_t>(kSites) * kSiteBlock);
  std::vector<std::int32_t> scales(static_cast<std::size_t>(kSites));
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  };
  for (auto& v : cla) v = static_cast<double>(next() >> 11) * 0x1.0p-53;
  for (auto& sc : scales) sc = static_cast<std::int32_t>(next() & 7);

  sdc::ClaChecksum reference;
  reference.update(cla.data(), scales.data(), 0, kSites);
  const std::uint64_t expected = reference.finish();

  for (const auto isa : supported_isas()) {
    const KernelOps ops = get_kernel_ops(isa);
    ASSERT_NE(ops.cla_checksum, nullptr);

    sdc::ClaChecksum whole;
    ops.cla_checksum(whole, cla.data(), scales.data(), 0, kSites);
    EXPECT_EQ(whole.finish(), expected) << "whole-range, isa " << static_cast<int>(isa);

    // Chunked accumulation at both the engine's chunk size and an awkward
    // odd width that exercises the vector back-ends' head/tail handling.
    for (const std::int64_t chunk : {std::int64_t{512}, std::int64_t{53}}) {
      sdc::ClaChecksum split;
      for (std::int64_t b = 0; b < kSites; b += chunk) {
        ops.cla_checksum(split, cla.data(), scales.data(), b, std::min(kSites, b + chunk));
      }
      EXPECT_EQ(split.finish(), expected)
          << "chunk " << chunk << ", isa " << static_cast<int>(isa);
    }
  }

  // Single-bit sensitivity: flipping any one bit changes exactly one term of
  // one lane's fold chain, which the distinct-rotation finish cannot cancel.
  std::uint64_t bits;
  std::memcpy(&bits, &cla[12345], sizeof(bits));
  bits ^= 1ULL << 17;
  std::memcpy(&cla[12345], &bits, sizeof(bits));
  sdc::ClaChecksum flipped;
  flipped.update(cla.data(), scales.data(), 0, kSites);
  EXPECT_NE(flipped.finish(), expected);

  scales[7] ^= 1;
  sdc::ClaChecksum flipped_scale;
  flipped_scale.update(cla.data(), scales.data(), 0, kSites);
  EXPECT_NE(flipped_scale.finish(), flipped.finish());
}

/// Corrupts `node` on `engine` after committing CLAs at `edge`, re-evaluates
/// at the same edge, and asserts the full heal contract: exactly one
/// detection, exactly one heal, no escalation, a recompute localized to the
/// corrupted node (not a full traversal), and a final value bit-identical
/// to `expected` from a clean engine.
template <typename Engine>
void expect_detect_and_heal(Engine& engine, tree::Slot* edge, int node, double expected,
                            const std::string& context) {
  (void)engine.log_likelihood(edge);  // commit + checksum CLAs at this root edge
  ASSERT_TRUE(engine.corrupt_cla_for_testing(node, /*word=*/37 + node, /*bit=*/node))
      << context << ": node " << node << " has no resident CLA";

  const sdc::Counters before = engine.sdc_counters();
  const std::int64_t newviews_before = engine.stats().kernel(Kernel::kNewview).calls;
  const double healed = engine.log_likelihood(edge);
  const sdc::Counters after = engine.sdc_counters();

  EXPECT_EQ(after.hits, before.hits + 1) << context;
  EXPECT_EQ(after.heals, before.heals + 1) << context;
  EXPECT_EQ(after.escalations, before.escalations) << context;
  // Localized recompute: healing one corrupted CLA re-runs newview for that
  // node alone, not the whole subtree below the root edge.
  EXPECT_EQ(engine.stats().kernel(Kernel::kNewview).calls - newviews_before, 1) << context;
  // The recompute replays the identical kernels on identical inputs, so the
  // healed value is bit-identical to the never-corrupted one.
  EXPECT_EQ(healed, expected) << context;
}

class DenseSdcTest : public ::testing::TestWithParam<simd::Isa> {
 protected:
  void SetUp() override {
    if (!simd::isa_supported(GetParam())) GTEST_SKIP() << "ISA unsupported";
  }
};

TEST_P(DenseSdcTest, HealsCorruptionAtEveryPlanLevel) {
  Rng rng(5);
  const auto alignment = testutil::random_alignment(10, 160, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);

  LikelihoodEngine::Config config;
  config.isa = GetParam();
  config.sdc_checks = true;
  LikelihoodEngine engine(patterns, model, tree, config);
  LikelihoodEngine::Config clean_config;
  clean_config.isa = GetParam();
  LikelihoodEngine clean(patterns, model, tree, clean_config);  // no checks: the reference

  // Rooting at each edge in turn and corrupting both inner endpoints places
  // every inner node at every depth of the traversal plan across the sweep.
  std::set<int> corrupted;
  for (tree::Slot* edge : tree.edges()) {
    for (tree::Slot* end : {edge, edge->back}) {
      if (end->is_tip()) continue;
      const double expected = clean.log_likelihood(edge);
      expect_detect_and_heal(engine, edge, end->node_id, expected,
                             "dense node " + std::to_string(end->node_id));
      corrupted.insert(end->node_id);
    }
  }
  EXPECT_EQ(static_cast<int>(corrupted.size()), tree.node_count() - tree.taxon_count());
  EXPECT_GT(engine.sdc_counters().checks, engine.sdc_counters().hits);
}

INSTANTIATE_TEST_SUITE_P(Isas, DenseSdcTest,
                         ::testing::Values(simd::Isa::kScalar, simd::Isa::kAvx2,
                                           simd::Isa::kAvx512));

TEST(CatSdc, HealsCorruptionAtEveryNode) {
  Rng rng(6);
  const auto alignment = testutil::random_alignment(9, 140, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(9, rng);
  const int categories = 5;
  std::vector<double> rates;
  for (int c = 0; c < categories; ++c) rates.push_back(rng.uniform(0.05, 4.0));
  std::vector<std::uint8_t> assignment(patterns.pattern_count());
  for (auto& a : assignment) {
    a = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(categories)));
  }

  for (const auto isa : supported_isas()) {
    CatEngine::Config config;
    config.isa = isa;
    config.sdc_checks = true;
    CatEngine engine(patterns, model, tree, categories, config);
    engine.set_categories(rates, assignment);
    CatEngine::Config clean_config;
    clean_config.isa = isa;
    CatEngine clean(patterns, model, tree, categories, clean_config);
    clean.set_categories(rates, assignment);

    for (tree::Slot* edge : tree.edges()) {
      if (edge->is_tip()) continue;
      const double expected = clean.log_likelihood(edge);
      expect_detect_and_heal(engine, edge, edge->node_id, expected,
                             "cat " + simd::to_string(isa) + " node " +
                                 std::to_string(edge->node_id));
    }
  }
}

TEST(GeneralSdc, HealsCorruptionAtEveryNode) {
  Rng rng(7);
  const auto alignment = testutil::random_alignment(8, 120, rng, 0.05);
  const auto patterns = bio::compress_patterns(alignment);
  const auto params = testutil::random_gtr_params(rng);
  const model::GeneralModel model(
      4, std::vector<double>(params.exchangeabilities.begin(), params.exchangeabilities.end()),
      std::vector<double>(params.frequencies.begin(), params.frequencies.end()), params.alpha);
  tree::Tree tree = tree::Tree::random(8, rng);

  for (const auto isa : supported_isas()) {
    GeneralEngine::Config config;
    config.isa = isa;
    config.sdc_checks = true;
    GeneralEngine engine(patterns, model, tree, bio::dna_code_masks(), config);
    GeneralEngine::Config clean_config;
    clean_config.isa = isa;
    GeneralEngine clean(patterns, model, tree, bio::dna_code_masks(), clean_config);

    for (tree::Slot* edge : tree.edges()) {
      if (edge->is_tip()) continue;
      const double expected = clean.log_likelihood(edge);
      expect_detect_and_heal(engine, edge, edge->node_id, expected,
                             "general " + simd::to_string(isa) + " node " +
                                 std::to_string(edge->node_id));
    }
  }
}

TEST(Escalation, NonFiniteOutputExhaustsRetryBudgetThenThrows) {
  // A NaN branch length makes evaluate return NaN deterministically: every
  // heal attempt (invalidate-all + recompute) reproduces the same NaN, so
  // the sentinel must burn its retry budget and escalate instead of looping.
  Rng rng(8);
  const auto alignment = testutil::random_alignment(6, 80, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(6, rng);
  tree::Slot* edge = tree.tip(0);
  edge->length = std::numeric_limits<double>::quiet_NaN();
  edge->back->length = edge->length;

  {
    // Control: without checks the NaN propagates silently — the exact
    // failure mode the sentinel exists to catch.
    LikelihoodEngine unguarded(patterns, model, tree);
    EXPECT_TRUE(std::isnan(unguarded.log_likelihood(edge)));
  }

  LikelihoodEngine::Config config;
  config.sdc_checks = true;
  LikelihoodEngine engine(patterns, model, tree, config);
  EXPECT_THROW((void)engine.log_likelihood(edge), sdc::CorruptionDetected);
  EXPECT_EQ(engine.sdc_counters().escalations, 1);
  EXPECT_EQ(engine.sdc_counters().heals, sdc::kHealRetryBudget - 1);
}

TEST(PartitionedSdc, HealsAcrossAllPartitionEngines) {
  Rng rng(9);
  const auto alignment = testutil::random_alignment(10, 600, rng);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);
  const auto specs = even_partitions(static_cast<std::int64_t>(alignment.site_count()), 3);

  LikelihoodEngine::Config config;
  config.sdc_checks = true;
  PartitionedEvaluator evaluator(alignment, specs, model, tree, config);
  PartitionedEvaluator clean(alignment, specs, model, tree);

  tree::Slot* edge = tree.tip(0);
  const double expected = clean.log_likelihood(edge);
  (void)evaluator.log_likelihood(edge);

  // Corrupt the root-edge CLA in ONE partition: the merged executor has no
  // engine-internal heal loop, so the partition-level loop must catch the
  // detection and invalidate the named node on every engine before retrying.
  const int node = edge->back->node_id;
  ASSERT_TRUE(evaluator.partition_engine(0).corrupt_cla_for_testing(node, 11, 3));
  const double healed = evaluator.log_likelihood(edge);
  EXPECT_EQ(healed, expected);
  EXPECT_EQ(evaluator.partition_engine(0).sdc_counters().hits, 1);
  EXPECT_EQ(evaluator.partition_engine(1).sdc_counters().hits, 0);
}

TEST(ObsReport, HasSdcDefenseSection) {
  auto& registry = obs::Registry::instance();
  registry.reset();

  Rng rng(10);
  const auto alignment = testutil::random_alignment(8, 100, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(testutil::random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(8, rng);

  LikelihoodEngine::Config config;
  config.sdc_checks = true;
  config.metrics = obs::MetricsMode::kOn;
  LikelihoodEngine engine(patterns, model, tree, config);
  tree::Slot* edge = tree.tip(0);
  (void)engine.log_likelihood(edge);
  ASSERT_TRUE(engine.corrupt_cla_for_testing(edge->back->node_id, 5, 9));
  (void)engine.log_likelihood(edge);

  const std::string report = obs::render_kernel_report();
  EXPECT_NE(report.find("--- sdc defense ---"), std::string::npos) << report;
  EXPECT_NE(report.find("sdc.checks"), std::string::npos) << report;
  EXPECT_NE(report.find("sdc.heals"), std::string::npos) << report;
  EXPECT_NE(report.find("sdc.verify_ns"), std::string::npos) << report;
  registry.reset();
}

// --- End-to-end through the ExaML driver -----------------------------------

examl::ExperimentOptions distributed_options() {
  examl::ExperimentOptions options;
  options.search.max_rounds = 1;
  options.search.model_options.max_passes = 1;
  options.sdc_checks = true;
  return options;
}

TEST(DistributedSdc, CleanAgreementPathIsBitIdenticalToScalarReduction) {
  // The TMR agreement allreduce replaces the scalar lnL allreduce; its
  // rank-ordered fold must reproduce the scalar path bit for bit, or
  // enabling the defense would change search trajectories.
  const auto alignment = simulate::paper_dataset(400, 17, 10);
  const auto guarded = run_distributed_search(alignment, 3, distributed_options());
  ASSERT_EQ(guarded.recoveries, 0);
  EXPECT_GT(guarded.sdc.checks, 0);
  EXPECT_EQ(guarded.sdc.hits, 0);

  auto unguarded_options = distributed_options();
  unguarded_options.sdc_checks = false;
  const auto unguarded = run_distributed_search(alignment, 3, unguarded_options);
  EXPECT_EQ(guarded.log_likelihood, unguarded.log_likelihood);
  EXPECT_EQ(guarded.final_tree_newick, unguarded.final_tree_newick);
}

TEST(DistributedSdc, InjectedFaultsHealWithoutRestart) {
  // Both injected corruption kinds in one run: a CLA bit flip on rank 1
  // (caught by the checksum verify, healed by targeted recompute) and a
  // corrupted agreement slot delivered to rank 2 (caught by the TMR vote,
  // healed by majority).  The run must converge bit-identically to the
  // clean run with zero checkpoint restarts — healing, not restarting.
  const auto alignment = simulate::paper_dataset(400, 17, 10);
  const auto clean = run_distributed_search(alignment, 3, distributed_options());
  ASSERT_EQ(clean.recoveries, 0);

  auto faulty_options = distributed_options();
  faulty_options.fault_tolerance.faults.flip_cla_bits(/*rank=*/1, /*call_index=*/4)
      .corrupt_reduction(/*rank=*/2, /*call_index=*/3, /*element=*/1);
  const auto healed = run_distributed_search(alignment, 3, faulty_options);

  EXPECT_EQ(healed.recoveries, 0);
  EXPECT_EQ(healed.sdc_escalation_recoveries, 0);
  EXPECT_GT(healed.sdc.hits, 0);
  EXPECT_GT(healed.sdc.heals, 0);
  EXPECT_TRUE(healed.replicas_consistent);
  EXPECT_EQ(healed.log_likelihood, clean.log_likelihood);
  EXPECT_EQ(healed.final_tree_newick, clean.final_tree_newick);
}

}  // namespace
}  // namespace miniphi::core
