// Tests for src/search: Brent minimization, model optimization, SPR search.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/engine.hpp"
#include "src/search/brent.hpp"
#include "src/util/error.hpp"
#include "src/search/model_optimizer.hpp"
#include "src/search/spr_search.hpp"
#include "src/simulate/simulate.hpp"
#include "src/tree/parsimony.hpp"
#include "src/tree/splits.hpp"
#include "tests/testutil.hpp"

namespace miniphi::search {
namespace {

TEST(Brent, FindsQuadraticMinimum) {
  const auto result = brent_minimize([](double x) { return (x - 1.7) * (x - 1.7); }, -10, 10, 1e-8);
  EXPECT_NEAR(result.x, 1.7, 1e-6);
  EXPECT_NEAR(result.value, 0.0, 1e-10);
}

TEST(Brent, FindsAsymmetricMinimum) {
  // f(x) = x^4 - 3x^3 + 2, f'(x) = 4x^3 - 9x^2 → minimum at x = 9/4.
  const auto result =
      brent_minimize([](double x) { return x * x * x * x - 3 * x * x * x + 2; }, 0.1, 10, 1e-9);
  EXPECT_NEAR(result.x, 2.25, 1e-5);
}

TEST(Brent, RespectsBounds) {
  // Monotone decreasing on the interval: minimum sits at the upper bound.
  const auto result = brent_minimize([](double x) { return -x; }, 0, 5, 1e-8);
  EXPECT_NEAR(result.x, 5.0, 1e-3);
  EXPECT_THROW(brent_minimize([](double x) { return x; }, 3, 2), miniphi::Error);
}

TEST(Brent, HandlesNonSmoothFunction) {
  const auto result = brent_minimize([](double x) { return std::abs(x - 0.3); }, -2, 2, 1e-8);
  EXPECT_NEAR(result.x, 0.3, 1e-4);
}

TEST(Brent, MonotoneObjectivesReturnExactEndpoints) {
  // Regression: the golden-section probes are strictly interior, so without
  // the final endpoint comparison a monotone objective converged to a point
  // ~tolerance inside the interval instead of the boundary optimum.
  const auto decreasing = brent_minimize([](double x) { return -x; }, 0.0, 5.0, 1e-8);
  EXPECT_DOUBLE_EQ(decreasing.x, 5.0);
  EXPECT_DOUBLE_EQ(decreasing.value, -5.0);

  const auto increasing = brent_minimize([](double x) { return 3.0 * x + 1.0; }, -2.0, 7.0, 1e-8);
  EXPECT_DOUBLE_EQ(increasing.x, -2.0);
  EXPECT_DOUBLE_EQ(increasing.value, -5.0);

  // An interior minimum must win against both endpoints (strict comparison
  // keeps the interior point when values tie).
  const auto interior = brent_minimize([](double x) { return (x - 1.0) * (x - 1.0); }, 0.0, 5.0);
  EXPECT_NEAR(interior.x, 1.0, 1e-3);
  EXPECT_LT(interior.value, 1.0);  // beats f(0) = f(2) = 1
}

TEST(Brent, SurvivesNanOnPartOfTheDomain) {
  // Likelihood objectives can go NaN on part of the parameter domain (e.g.
  // numerically hostile α values).  A non-finite probe must shrink the
  // bracket, not propagate into the parabolic memory or the result.
  const auto f = [](double x) {
    if (x < 0.5) return std::numeric_limits<double>::quiet_NaN();
    return (x - 0.7) * (x - 0.7);
  };
  const auto result = brent_minimize(f, 0.0, 2.0, 1e-8);
  EXPECT_TRUE(std::isfinite(result.value));
  EXPECT_NEAR(result.x, 0.7, 1e-4);

  // NaN at the golden-section start point: the interior scan must find a
  // finite anchor (the golden start for [0, 2] is ≈ 0.764, so flip the bad
  // region to the upper half instead).
  const auto upper_bad = [](double x) {
    if (x > 0.6) return std::numeric_limits<double>::quiet_NaN();
    return (x - 0.2) * (x - 0.2);
  };
  const auto anchored = brent_minimize(upper_bad, 0.0, 2.0, 1e-8);
  EXPECT_TRUE(std::isfinite(anchored.value));
  EXPECT_NEAR(anchored.x, 0.2, 1e-4);

  // Non-finite everywhere is a caller error and must be loud, not a quiet
  // NaN result.
  EXPECT_THROW(
      brent_minimize([](double) { return std::numeric_limits<double>::quiet_NaN(); }, 0.0, 1.0),
      miniphi::Error);
}

TEST(Brent, EvaluationCountIsBounded) {
  int calls = 0;
  const auto f = [&calls](double x) {
    ++calls;
    return std::cos(x);
  };
  (void)brent_minimize(f, 0, 6, 1e-6);
  EXPECT_LT(calls, 60);
}

class SearchFixture : public ::testing::Test {
 protected:
  /// Simulated data on a known tree: the search should recover (or beat)
  /// the true tree's likelihood.
  void make_instance(int ntaxa, std::int64_t sites, std::uint64_t seed) {
    Rng rng(seed);
    model::GtrParams params;
    params.exchangeabilities = {1.0, 3.0, 1.0, 1.0, 3.0, 1.0};
    params.frequencies = {0.3, 0.2, 0.2, 0.3};
    params.alpha = 0.7;
    true_model_ = std::make_unique<model::GtrModel>(params);
    true_tree_ = std::make_unique<tree::Tree>(simulate::yule_tree(ntaxa, rng, 0.7));
    simulate::SimulationOptions options;
    options.sites = sites;
    alignment_ = std::make_unique<bio::Alignment>(
        simulate::simulate_alignment(*true_tree_, *true_model_, options, rng).alignment);
    patterns_ = std::make_unique<bio::PatternSet>(bio::compress_patterns(*alignment_));
  }

  std::unique_ptr<model::GtrModel> true_model_;
  std::unique_ptr<tree::Tree> true_tree_;
  std::unique_ptr<bio::Alignment> alignment_;
  std::unique_ptr<bio::PatternSet> patterns_;
};

TEST_F(SearchFixture, ModelOptimizationRecoversAlpha) {
  make_instance(12, 5000, 91);
  // Start from a deliberately wrong alpha; tree fixed to the truth.
  model::GtrParams start = true_model_->params();
  start.alpha = 5.0;
  tree::Tree tree(*true_tree_);
  core::LikelihoodEngine engine(*patterns_, model::GtrModel(start), tree);
  (void)engine.optimize_all_branches(tree.tip(0), 4);

  ModelOptimizerOptions options;
  options.optimize_rates = false;
  const auto result = optimize_model(engine, tree.tip(0), options);
  EXPECT_GT(result.evaluations, 3);
  // α̂ should move toward the truth (0.7); generous bracket for 5 K sites.
  EXPECT_GT(engine.model().params().alpha, 0.4);
  EXPECT_LT(engine.model().params().alpha, 1.2);
}

TEST_F(SearchFixture, ModelOptimizationImprovesLikelihood) {
  make_instance(10, 1200, 17);
  tree::Tree tree(*true_tree_);
  core::LikelihoodEngine engine(*patterns_, model::GtrModel(model::GtrParams::jc69()), tree);
  const double before = engine.optimize_all_branches(tree.tip(0), 3);
  const auto result = optimize_model(engine, tree.tip(0));
  EXPECT_GT(result.log_likelihood, before);
}

TEST_F(SearchFixture, SprRoundNeverDecreasesLikelihood) {
  make_instance(10, 800, 5);
  Rng rng(123);
  tree::Tree tree = tree::Tree::random(10, rng);  // bad random start
  core::LikelihoodEngine engine(*patterns_, *true_model_, tree);
  double current = engine.optimize_all_branches(tree.tip(0), 3);
  SearchResult stats;
  const double after = spr_round(engine, tree, 3, current, stats);
  EXPECT_GE(after, current - 1e-6);
  EXPECT_GT(stats.evaluated_insertions, 0);
  tree.validate();
}

TEST_F(SearchFixture, FullSearchRecoversTrueTopology) {
  // With plenty of signal (4 kb, 8 taxa) the ML tree should match the
  // generating topology.
  make_instance(8, 4000, 7);
  Rng rng(55);
  tree::Tree tree = tree::Tree::random(8, rng);
  core::LikelihoodEngine engine(*patterns_, *true_model_, tree);

  SearchOptions options;
  options.optimize_model = false;  // model fixed to the truth
  const auto result = run_tree_search(engine, tree, options);

  EXPECT_EQ(tree::robinson_foulds(tree, *true_tree_), 0)
      << "searched tree differs from the generating topology";

  // And its likelihood must beat / match the true tree with optimized
  // branch lengths.
  tree::Tree reference(*true_tree_);
  core::LikelihoodEngine reference_engine(*patterns_, *true_model_, reference);
  const double reference_lnl = reference_engine.optimize_all_branches(reference.tip(0), 8);
  EXPECT_GE(result.log_likelihood, reference_lnl - 0.05);
}

TEST_F(SearchFixture, SearchTrajectoryIsMonotone) {
  make_instance(12, 600, 3);
  Rng rng(9);
  tree::Tree tree = tree::Tree::random(12, rng);
  core::LikelihoodEngine engine(*patterns_, *true_model_, tree);
  SearchOptions options;
  options.optimize_model = false;
  const auto result = run_tree_search(engine, tree, options);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i], result.trajectory[i - 1] - 1e-6);
  }
  EXPECT_GE(result.rounds, 1);
}

TEST_F(SearchFixture, ParsimonyStartBeatsRandomStartInitially) {
  make_instance(14, 1000, 21);
  Rng rng_a(2), rng_b(2);
  tree::Tree parsimony_tree = tree::parsimony_starting_tree(*patterns_, rng_a);
  tree::Tree random_tree = tree::Tree::random(14, rng_b);

  core::LikelihoodEngine engine_p(*patterns_, *true_model_, parsimony_tree);
  core::LikelihoodEngine engine_r(*patterns_, *true_model_, random_tree);
  const double lnl_p = engine_p.optimize_all_branches(parsimony_tree.tip(0), 4);
  const double lnl_r = engine_r.optimize_all_branches(random_tree.tip(0), 4);
  EXPECT_GT(lnl_p, lnl_r);
}

}  // namespace
}  // namespace miniphi::search
