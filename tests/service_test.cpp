// Tests for the multi-tenant evaluation service (DESIGN.md §15): job kinds
// against solo baselines, admission control and load shedding, the retry
// helper, deadlines (in queue and mid-traversal), cooperative cancellation,
// graceful degradation under the global CLA budget, corruption containment,
// pool dispatch, and the seeded chaos soak — the fault drill the whole
// robustness contract is judged by.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/bio/patterns.hpp"
#include "src/core/kernels.hpp"
#include "src/core/make_evaluator.hpp"
#include "src/core/partition_spec.hpp"
#include "src/core/sdc.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/parallel/evaluator_factory.hpp"
#include "src/parallel/worker_pool.hpp"
#include "src/service/retry.hpp"
#include "src/service/service.hpp"
#include "src/util/cancellation.hpp"
#include "tests/testutil.hpp"

namespace miniphi::service {
namespace {

using namespace std::chrono_literals;

// Nominal bytes of one dense CLA buffer per pattern (matches the budget
// carving arithmetic in src/core; see memory_test.cpp).
constexpr std::int64_t kBytesPerPattern =
    core::kSiteBlock * static_cast<std::int64_t>(sizeof(double)) +
    static_cast<std::int64_t>(sizeof(std::int32_t));

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : rng_(101),
        alignment_(testutil::random_alignment(10, 240, rng_, 0.05)),
        patterns_(bio::compress_patterns(alignment_)),
        params_(testutil::random_gtr_params(rng_)),
        base_tree_(tree::Tree::random(10, rng_)) {}

  JobRequest make_request(const std::string& tenant, JobKind kind) const {
    JobRequest request;
    request.tenant = tenant;
    request.patterns = &patterns_;
    request.alignment = &alignment_;
    request.tree = &base_tree_;
    request.params = params_;
    request.options.kind = kind;
    return request;
  }

  /// Solo baseline with the evaluator shape the service builds for
  /// pool_threads == 1 (lnL is bit-identical across CLA budgets, so the
  /// same baseline also covers budgeted and degraded jobs).
  double solo(JobKind kind, int partitions = 1, int passes = 1) const {
    tree::Tree tree(base_tree_);
    const model::GtrModel model(params_);
    std::unique_ptr<core::Evaluator> evaluator;
    std::vector<core::PartitionSpec> specs;
    parallel::WorkerPool pool(1);
    if (partitions > 1) {
      specs = core::even_partitions(static_cast<std::int64_t>(alignment_.site_count()),
                                    partitions);
      core::StreamPlan streams;
      streams.stream_count = 1;
      evaluator = parallel::make_stream_evaluator(pool, alignment_, specs, model, tree, {},
                                                  streams);
    } else {
      evaluator = core::make_evaluator(patterns_, model, tree, core::EngineConfig{});
    }
    tree::Slot* root = tree.edges().front();
    switch (kind) {
      case JobKind::kEvaluate:
      case JobKind::kGradient:
        return evaluator->log_likelihood(root);
      case JobKind::kBranchSmooth:
        return evaluator->optimize_all_branches(root, passes);
    }
    return 0.0;
  }

  std::size_t solo_gradient_edges() const {
    tree::Tree tree(base_tree_);
    const model::GtrModel model(params_);
    auto evaluator = core::make_evaluator(patterns_, model, tree, core::EngineConfig{});
    (void)evaluator->log_likelihood(tree.edges().front());
    std::vector<core::BranchGradient> gradients;
    EXPECT_TRUE(evaluator->gradient_all_branches(tree.edges().front(), gradients));
    return gradients.size();
  }

  std::int64_t buffer_bytes() const {
    return static_cast<std::int64_t>(patterns_.pattern_count()) * kBytesPerPattern;
  }

  mutable Rng rng_;
  bio::Alignment alignment_;
  bio::PatternSet patterns_;
  model::GtrParams params_;
  tree::Tree base_tree_;
};

/// Gate a job inside its fault_injector hook so the test controls exactly
/// when the executor is busy and when it may proceed.
struct Gate {
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future{release.get_future()};

  std::function<void(core::Evaluator&)> injector() {
    return [this](core::Evaluator&) {
      entered.set_value();
      release_future.wait();
    };
  }
};

TEST_F(ServiceTest, JobKindsMatchSoloRunsBitForBit) {
  EvaluationService service{ServiceConfig{}};
  service.register_tenant("acme", {});

  const std::int64_t id_eval = service.submit(make_request("acme", JobKind::kEvaluate));
  const std::int64_t id_grad = service.submit(make_request("acme", JobKind::kGradient));
  JobRequest smooth_request = make_request("acme", JobKind::kBranchSmooth);
  smooth_request.options.smoothing_passes = 2;
  const std::int64_t id_smooth = service.submit(smooth_request);
  JobRequest partitioned = make_request("acme", JobKind::kEvaluate);
  partitioned.options.partitions = 3;
  const std::int64_t id_part = service.submit(partitioned);
  ASSERT_GE(id_eval, 0);
  ASSERT_GE(id_grad, 0);
  ASSERT_GE(id_smooth, 0);
  ASSERT_GE(id_part, 0);

  const JobResult eval = service.wait(id_eval);
  ASSERT_EQ(eval.status, JobStatus::kOk) << eval.error;
  EXPECT_EQ(eval.log_likelihood, solo(JobKind::kEvaluate));

  const JobResult grad = service.wait(id_grad);
  ASSERT_EQ(grad.status, JobStatus::kOk) << grad.error;
  EXPECT_EQ(grad.log_likelihood, solo(JobKind::kEvaluate));
  EXPECT_EQ(grad.gradient_edges, solo_gradient_edges());

  const JobResult smooth = service.wait(id_smooth);
  ASSERT_EQ(smooth.status, JobStatus::kOk) << smooth.error;
  EXPECT_EQ(smooth.log_likelihood, solo(JobKind::kBranchSmooth, 1, 2));

  const JobResult part = service.wait(id_part);
  ASSERT_EQ(part.status, JobStatus::kOk) << part.error;
  EXPECT_EQ(part.log_likelihood, solo(JobKind::kEvaluate, 3));

  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.terminal, 4);
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.budget_in_use, 0);
  const TenantStats tenant = service.tenant_stats("acme");
  EXPECT_EQ(tenant.completed, 4);
  EXPECT_EQ(tenant.in_flight, 0);
}

TEST_F(ServiceTest, AdmissionShedsQueueFullAndTenantQuotaSeparately) {
  ServiceConfig config;
  config.executors = 1;
  config.queue_limit = 3;
  EvaluationService service(config);
  service.register_tenant("roomy", TenantQuota{.max_in_flight = 10});
  service.register_tenant("capped", TenantQuota{.max_in_flight = 2});

  // Park the single executor inside a gated job; everything submitted from
  // here on stays queued, making admission decisions deterministic.
  Gate gate;
  JobRequest blocker = make_request("roomy", JobKind::kEvaluate);
  blocker.fault_injector = gate.injector();
  const std::int64_t blocker_id = service.submit(blocker);
  ASSERT_GE(blocker_id, 0);
  gate.entered.get_future().wait();

  // Tenant quota: two in flight admitted, the third sheds even though the
  // global queue still has room.
  const std::int64_t capped_a = service.submit(make_request("capped", JobKind::kEvaluate));
  const std::int64_t capped_b = service.submit(make_request("capped", JobKind::kEvaluate));
  ASSERT_GE(capped_a, 0);
  ASSERT_GE(capped_b, 0);
  EXPECT_EQ(service.submit(make_request("capped", JobKind::kEvaluate)), kOverloadedJobId);
  EXPECT_EQ(service.tenant_stats("capped").overloaded, 1);

  // Global queue: one more fills it (2 capped + 1 roomy queued), the next
  // sheds on queue-full despite the roomy quota.
  const std::int64_t roomy_a = service.submit(make_request("roomy", JobKind::kEvaluate));
  ASSERT_GE(roomy_a, 0);
  EXPECT_EQ(service.submit(make_request("roomy", JobKind::kEvaluate)), kOverloadedJobId);
  EXPECT_EQ(service.tenant_stats("roomy").overloaded, 1);

  // Release the executor; the shed condition clears and the retry helper
  // gets the previously-rejected job admitted.
  gate.release.set_value();
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_delay = 200us;
  policy.max_delay = 2ms;
  policy.seed = 7;
  const std::int64_t retried = submit_with_retry(service, make_request("capped", JobKind::kEvaluate), policy);
  ASSERT_GE(retried, 0);
  EXPECT_EQ(service.wait(retried).status, JobStatus::kOk);
  for (const std::int64_t id : {blocker_id, capped_a, capped_b, roomy_a}) {
    EXPECT_EQ(service.wait(id).status, JobStatus::kOk);
  }
  service.drain();
  EXPECT_EQ(service.tenant_stats("capped").in_flight, 0);
  EXPECT_EQ(service.tenant_stats("roomy").in_flight, 0);
}

TEST(RetryHelper, BacksOffUntilAdmittedAndGivesUpAtTheCap) {
  int calls = 0;
  const std::int64_t admitted = submit_with_retry(
      [&]() -> std::int64_t { return ++calls < 4 ? kOverloadedJobId : 7; }, RetryPolicy{});
  EXPECT_EQ(admitted, 7);
  EXPECT_EQ(calls, 4);

  calls = 0;
  RetryPolicy strict;
  strict.max_attempts = 3;
  strict.initial_delay = 50us;
  const std::int64_t shed = submit_with_retry(
      [&]() -> std::int64_t {
        ++calls;
        return kOverloadedJobId;
      },
      strict);
  EXPECT_EQ(shed, kOverloadedJobId);
  EXPECT_EQ(calls, 3);
}

TEST_F(ServiceTest, DeadlineExpiresInQueueWithoutTouchingAnEngine) {
  ServiceConfig config;
  config.executors = 1;
  EvaluationService service(config);
  service.register_tenant("acme", {});

  Gate gate;
  JobRequest blocker = make_request("acme", JobKind::kEvaluate);
  blocker.fault_injector = gate.injector();
  const std::int64_t blocker_id = service.submit(blocker);
  gate.entered.get_future().wait();

  JobRequest doomed = make_request("acme", JobKind::kEvaluate);
  doomed.options.deadline = 5ms;  // armed at submit: queue wait counts
  const std::int64_t doomed_id = service.submit(doomed);
  ASSERT_GE(doomed_id, 0);
  std::this_thread::sleep_for(30ms);
  gate.release.set_value();

  const JobResult result = service.wait(doomed_id);
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(result.error.find("queue"), std::string::npos) << result.error;
  EXPECT_EQ(result.cla_bytes_granted, 0);
  EXPECT_EQ(service.wait(blocker_id).status, JobStatus::kOk);
}

TEST_F(ServiceTest, DeadlineExpiresMidTraversalAndServiceStaysHealthy) {
  EvaluationService service{ServiceConfig{}};
  service.register_tenant("acme", {});

  JobRequest doomed = make_request("acme", JobKind::kEvaluate);
  doomed.options.deadline = 20ms;
  // Burn the deadline after dispatch but before the traversal: the first
  // engine-level cancellation check observes the expiry mid-job.
  doomed.fault_injector = [](core::Evaluator&) { std::this_thread::sleep_for(50ms); };
  const JobResult result = service.wait(service.submit(doomed));
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(result.error.find("deadline"), std::string::npos) << result.error;

  const JobResult after = service.wait(service.submit(make_request("acme", JobKind::kEvaluate)));
  ASSERT_EQ(after.status, JobStatus::kOk) << after.error;
  EXPECT_EQ(after.log_likelihood, solo(JobKind::kEvaluate));
}

TEST_F(ServiceTest, CancelUnwindsTheJobAndLeavesSharedStateClean) {
  ServiceConfig config;
  config.executors = 1;
  EvaluationService service(config);
  service.register_tenant("acme", {});

  Gate gate;
  JobRequest victim = make_request("acme", JobKind::kBranchSmooth);
  victim.options.smoothing_passes = 4;
  victim.fault_injector = gate.injector();
  const std::int64_t id = service.submit(victim);
  gate.entered.get_future().wait();
  EXPECT_TRUE(service.cancel(id));
  gate.release.set_value();

  const JobResult result = service.wait(id);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_FALSE(service.cancel(id));    // already terminal
  EXPECT_FALSE(service.cancel(9999));  // unknown

  // The executor, pool and engines survived the unwind: the next job on
  // the same executor completes bit-identically.
  const JobResult after = service.wait(service.submit(make_request("acme", JobKind::kEvaluate)));
  ASSERT_EQ(after.status, JobStatus::kOk) << after.error;
  EXPECT_EQ(after.log_likelihood, solo(JobKind::kEvaluate));
  EXPECT_EQ(service.tenant_stats("acme").cancelled, 1);
}

TEST_F(ServiceTest, MemoryPressureDegradesTheGrantNotTheAnswer) {
  const std::int64_t buffer = buffer_bytes();
  const std::int64_t want = static_cast<std::int64_t>(base_tree_.inner_count()) * buffer;
  ServiceConfig config;
  config.executors = 2;
  config.cla_budget_bytes = want + 4 * buffer;
  config.degrade_floor_bytes = 4 * buffer;
  EvaluationService service(config);
  service.register_tenant("acme", TenantQuota{.max_in_flight = 8});

  // The holder reserves its full request, then parks; the budget it holds
  // forces the second job into the degradation path.
  Gate gate;
  JobRequest holder = make_request("acme", JobKind::kEvaluate);
  holder.options.cla_budget_bytes = want;
  holder.fault_injector = gate.injector();
  const std::int64_t holder_id = service.submit(holder);
  gate.entered.get_future().wait();

  JobRequest squeezed = make_request("acme", JobKind::kEvaluate);
  squeezed.options.cla_budget_bytes = want;
  const JobResult degraded = service.wait(service.submit(squeezed));
  ASSERT_EQ(degraded.status, JobStatus::kOk) << degraded.error;
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.cla_bytes_granted, 4 * buffer);
  EXPECT_EQ(degraded.log_likelihood, solo(JobKind::kEvaluate));

  gate.release.set_value();
  const JobResult held = service.wait(holder_id);
  ASSERT_EQ(held.status, JobStatus::kOk) << held.error;
  EXPECT_FALSE(held.degraded);
  EXPECT_EQ(held.cla_bytes_granted, want);

  service.drain();
  EXPECT_EQ(service.stats().budget_in_use, 0);
  EXPECT_EQ(service.tenant_stats("acme").degraded, 1);
}

TEST_F(ServiceTest, CorruptionEscalationsAreContainedRetriedAndBounded) {
  ServiceConfig config;
  config.executors = 1;
  config.corruption_retry_budget = 2;
  EvaluationService service(config);
  service.register_tenant("acme", {});

  // Flaky: the injected escalation clears after two rebuilds.
  std::atomic<int> flaky_attempts{0};
  JobRequest flaky = make_request("acme", JobKind::kEvaluate);
  flaky.fault_injector = [&](core::Evaluator&) {
    if (flaky_attempts.fetch_add(1) < 2) {
      throw core::sdc::CorruptionDetected(7, "injected escalation");
    }
  };
  const JobResult healed = service.wait(service.submit(flaky));
  ASSERT_EQ(healed.status, JobStatus::kOk) << healed.error;
  EXPECT_EQ(healed.rebuilds, 2);
  EXPECT_EQ(flaky_attempts.load(), 3);
  EXPECT_EQ(healed.log_likelihood, solo(JobKind::kEvaluate));

  // Hopeless: the rebuild budget runs out and the job fails with a
  // structured error — the process and the executor survive.
  std::atomic<int> doomed_attempts{0};
  JobRequest doomed = make_request("acme", JobKind::kEvaluate);
  doomed.fault_injector = [&](core::Evaluator&) {
    doomed_attempts.fetch_add(1);
    throw core::sdc::CorruptionDetected(9, "persistent corruption");
  };
  const JobResult corrupt = service.wait(service.submit(doomed));
  EXPECT_EQ(corrupt.status, JobStatus::kCorrupt);
  EXPECT_EQ(corrupt.rebuilds, 3);
  EXPECT_EQ(doomed_attempts.load(), 3);  // initial try + retry budget of 2
  EXPECT_NE(corrupt.error.find("persistent"), std::string::npos) << corrupt.error;

  const JobResult after = service.wait(service.submit(make_request("acme", JobKind::kEvaluate)));
  ASSERT_EQ(after.status, JobStatus::kOk) << after.error;
  EXPECT_EQ(after.log_likelihood, solo(JobKind::kEvaluate));
  EXPECT_EQ(service.tenant_stats("acme").corrupt, 1);
}

TEST_F(ServiceTest, PoolThreadsDispatchMatchesForkJoinBaseline) {
  ServiceConfig config;
  config.pool_threads = 2;
  EvaluationService service(config);
  service.register_tenant("acme", {});

  const JobResult result = service.wait(service.submit(make_request("acme", JobKind::kEvaluate)));
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;

  tree::Tree tree(base_tree_);
  const model::GtrModel model(params_);
  parallel::WorkerPool pool(2);
  auto baseline = parallel::make_fork_join_evaluator(pool, patterns_, model, tree, {});
  EXPECT_EQ(result.log_likelihood, baseline->log_likelihood(tree.edges().front()));
}

// --- The chaos soak ---------------------------------------------------------
//
// Four tenants hammer the service from client threads while the seeded
// fault plan kills jobs mid-kernel, expires deadlines mid-traversal and
// flips CLA bits between evaluations.  The acceptance bar (ISSUE 10): the
// service never aborts, every wait returns, quotas and the budget
// reconcile to zero after drain, cancelled jobs carry structured errors,
// and every surviving job's lnL is bit-identical to its solo run.
TEST_F(ServiceTest, ChaosSoakSurvivesKillsExpiriesAndCorruption) {
  const double lnl_eval = solo(JobKind::kEvaluate);
  const double lnl_eval_part = solo(JobKind::kEvaluate, 3);
  const double lnl_smooth = solo(JobKind::kBranchSmooth, 1, 1);
  const std::size_t gradient_edges = solo_gradient_edges();
  const std::int64_t buffer = buffer_bytes();

  ServiceConfig config;
  config.executors = 3;
  config.queue_limit = 8;
  config.cla_budget_bytes = 12 * buffer;
  config.degrade_floor_bytes = 4 * buffer;
  config.metrics = obs::MetricsMode::kOn;
  config.chaos.enabled = true;
  config.chaos.seed = 2026;
  config.chaos.kill_rate = 0.2;
  config.chaos.expire_rate = 0.25;
  config.chaos.corrupt_rate = 0.8;
  EvaluationService service(config);
  // Registration order is deliberately unsorted: the report must still
  // render tenant sections in sorted order.
  const std::vector<std::string> tenants{"delta", "bravo", "alpha", "charlie"};
  for (const auto& tenant : tenants) {
    service.register_tenant(tenant, TenantQuota{.max_in_flight = 3});
  }

  constexpr int kJobsPerTenant = 12;
  std::vector<std::vector<JobRequest>> requests(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (int j = 0; j < kJobsPerTenant; ++j) {
      const auto kind = static_cast<JobKind>(j % 3);
      JobRequest request = make_request(tenants[t], kind);
      if (kind == JobKind::kEvaluate) {
        if (j % 2 == 1) {
          request.options.sdc_checks = true;  // corruption-drill candidates
        } else if (j == 6) {
          request.options.partitions = 3;
        }
      }
      if (j % 4 == 1) {
        request.options.cla_budget_bytes =
            static_cast<std::int64_t>(base_tree_.inner_count()) * buffer;
        if (j == 5) request.options.cla_spill = true;
      }
      if (j % 4 == 2) request.options.deadline = 30s;  // generous: only chaos expires it
      requests[t].push_back(std::move(request));
    }
  }

  std::vector<std::vector<std::int64_t>> ids(tenants.size());
  std::vector<std::thread> clients;
  clients.reserve(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    clients.emplace_back([&, t] {
      RetryPolicy policy;
      policy.seed = 77 + t;
      policy.max_attempts = 50;
      policy.initial_delay = 200us;
      policy.max_delay = 5ms;
      for (const JobRequest& request : requests[t]) {
        std::int64_t id = kOverloadedJobId;
        // Shedding is expected under this load; retry until admitted so
        // every planned job actually runs.
        while ((id = submit_with_retry(service, request, policy)) == kOverloadedJobId) {
        }
        ids[t].push_back(id);
      }
    });
  }
  for (auto& client : clients) client.join();
  service.drain();

  int ok = 0;
  int killed = 0;
  int expired = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (int j = 0; j < kJobsPerTenant; ++j) {
      const JobRequest& request = requests[t][j];
      const JobResult result = service.wait(ids[t][j]);
      switch (result.status) {
        case JobStatus::kOk:
          ++ok;
          // Bit-identity against the solo baseline — including jobs that
          // ran degraded, healed injected corruption, or spilled.
          if (request.options.kind == JobKind::kEvaluate) {
            EXPECT_EQ(result.log_likelihood,
                      request.options.partitions > 1 ? lnl_eval_part : lnl_eval)
                << tenants[t] << " job " << j;
          } else if (request.options.kind == JobKind::kGradient) {
            EXPECT_EQ(result.log_likelihood, lnl_eval) << tenants[t] << " job " << j;
            EXPECT_EQ(result.gradient_edges, gradient_edges);
          } else {
            EXPECT_EQ(result.log_likelihood, lnl_smooth) << tenants[t] << " job " << j;
          }
          break;
        case JobStatus::kCancelled:
          ++killed;
          EXPECT_FALSE(result.error.empty());
          break;
        case JobStatus::kDeadlineExceeded:
          ++expired;
          EXPECT_FALSE(result.error.empty());
          break;
        default:
          ADD_FAILURE() << tenants[t] << " job " << j << " unexpected status "
                        << static_cast<int>(result.status) << ": " << result.error;
      }
    }
  }
  // The seeded fault plan is deterministic per job id: both populations
  // must be represented or the drill proved nothing.
  std::cout << "[soak] ok=" << ok << " cancelled=" << killed << " expired=" << expired
            << " of " << tenants.size() * kJobsPerTenant << " jobs\n";
  EXPECT_GT(ok, 0);
  EXPECT_GT(killed + expired, 0);

  // Reconciliation to zero: no leaked queue entries, running slots, budget
  // bytes or per-tenant in-flight counts survive the drain.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.budget_in_use, 0);
  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(tenants.size()) * kJobsPerTenant);
  EXPECT_EQ(stats.terminal, stats.submitted);
  for (const auto& tenant : tenants) {
    const TenantStats ts = service.tenant_stats(tenant);
    EXPECT_EQ(ts.in_flight, 0) << tenant;
    EXPECT_EQ(ts.submitted, kJobsPerTenant) << tenant;
    EXPECT_EQ(ts.completed + ts.cancelled + ts.deadline_expired + ts.corrupt + ts.failed,
              ts.submitted)
        << tenant;
  }

  // Liveness: the service still takes and completes work after the storm
  // (chaos stays armed, so allow a few attempts to draw a surviving job).
  bool lively = false;
  for (int attempt = 0; attempt < 20 && !lively; ++attempt) {
    std::int64_t id = kOverloadedJobId;
    while ((id = service.submit(make_request("alpha", JobKind::kEvaluate))) == kOverloadedJobId) {
    }
    const JobResult result = service.wait(id);
    if (result.status == JobStatus::kOk) {
      EXPECT_EQ(result.log_likelihood, lnl_eval);
      lively = true;
    } else {
      EXPECT_TRUE(result.status == JobStatus::kCancelled ||
                  result.status == JobStatus::kDeadlineExceeded)
          << result.error;
    }
  }
  EXPECT_TRUE(lively) << "no post-soak job survived 20 attempts";

  // Satellite: the report renders per-tenant sections deterministically,
  // sorted by tenant id regardless of registration order.
  if (obs::kMetricsCompiled) {
    const std::string report = obs::render_kernel_report();
    const std::size_t section = report.find("--- service ---");
    ASSERT_NE(section, std::string::npos) << report;
    const std::size_t pos_alpha = report.find("tenant alpha:");
    const std::size_t pos_bravo = report.find("tenant bravo:");
    const std::size_t pos_charlie = report.find("tenant charlie:");
    const std::size_t pos_delta = report.find("tenant delta:");
    ASSERT_NE(pos_alpha, std::string::npos);
    ASSERT_NE(pos_bravo, std::string::npos);
    ASSERT_NE(pos_charlie, std::string::npos);
    ASSERT_NE(pos_delta, std::string::npos);
    EXPECT_GT(pos_alpha, section);
    EXPECT_LT(pos_alpha, pos_bravo);
    EXPECT_LT(pos_bravo, pos_charlie);
    EXPECT_LT(pos_charlie, pos_delta);
  }
}

TEST_F(ServiceTest, MalformedRequestsThrowInsteadOfShedding) {
  EvaluationService service{ServiceConfig{}};
  service.register_tenant("acme", {});
  EXPECT_THROW(service.register_tenant("acme", {}), Error);        // duplicate
  EXPECT_THROW(service.register_tenant("dotted.name", {}), Error); // metric-unsafe
  EXPECT_THROW(service.register_tenant("", {}), Error);

  JobRequest unknown_tenant = make_request("ghost", JobKind::kEvaluate);
  EXPECT_THROW((void)service.submit(unknown_tenant), Error);

  JobRequest no_tree = make_request("acme", JobKind::kEvaluate);
  no_tree.tree = nullptr;
  EXPECT_THROW((void)service.submit(no_tree), Error);

  JobRequest no_patterns = make_request("acme", JobKind::kEvaluate);
  no_patterns.patterns = nullptr;
  EXPECT_THROW((void)service.submit(no_patterns), Error);

  JobRequest no_alignment = make_request("acme", JobKind::kEvaluate);
  no_alignment.options.partitions = 2;
  no_alignment.alignment = nullptr;
  EXPECT_THROW((void)service.submit(no_alignment), Error);

  EXPECT_THROW((void)service.wait(12345), Error);
  EXPECT_THROW((void)service.tenant_stats("ghost"), Error);
}

}  // namespace
}  // namespace miniphi::service
