// Direct unit tests for the SIMD pack abstraction (src/simd) — every lane
// operation the kernels rely on, against scalar references.
#include <gtest/gtest.h>

#include <cmath>

#include "src/simd/dispatch.hpp"
#include "src/util/error.hpp"
#include "src/simd/pack.hpp"
#include "src/util/aligned.hpp"
#include "src/util/rng.hpp"

namespace miniphi::simd {
namespace {

TEST(Dispatch, WidthsAndNames) {
  EXPECT_EQ(isa_width(Isa::kScalar), 1);
  EXPECT_EQ(isa_width(Isa::kAvx2), 4);
  EXPECT_EQ(isa_width(Isa::kAvx512), 8);
  EXPECT_EQ(to_string(Isa::kAvx512), "avx512");
  EXPECT_EQ(isa_from_string("avx"), Isa::kAvx2);
  EXPECT_EQ(isa_from_string("mic"), Isa::kAvx512);  // alias: the paper's name
  EXPECT_THROW(isa_from_string("sse9"), Error);
  EXPECT_TRUE(isa_supported(Isa::kScalar));
  // best_supported_isa must itself be supported.
  EXPECT_TRUE(isa_supported(best_supported_isa()));
}

template <int W>
void exercise_pack() {
  using P = Pack<W>;
  Rng rng(11 + W);
  AlignedDoubles a(W), b(W), c(W), out(W);
  for (int i = 0; i < W; ++i) {
    a[static_cast<std::size_t>(i)] = rng.uniform(-3.0, 3.0);
    b[static_cast<std::size_t>(i)] = rng.uniform(-3.0, 3.0);
    c[static_cast<std::size_t>(i)] = rng.uniform(-3.0, 3.0);
  }

  // Arithmetic lane-wise.
  (P::load(a.data()) + P::load(b.data())).store(out.data());
  for (int i = 0; i < W; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)]);
  }
  (P::load(a.data()) * P::load(b.data()) - P::load(c.data())).store(out.data());
  for (int i = 0; i < W; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)] -
                         c[static_cast<std::size_t>(i)]);
  }
  (P::load(a.data()) / P::load(b.data())).store(out.data());
  for (int i = 0; i < W; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     a[static_cast<std::size_t>(i)] / b[static_cast<std::size_t>(i)]);
  }

  // FMA (fused: check against long-double reference with loose equality to
  // the unfused value).
  P::fma(P::load(a.data()), P::load(b.data()), P::load(c.data())).store(out.data());
  for (int i = 0; i < W; ++i) {
    EXPECT_NEAR(out[static_cast<std::size_t>(i)],
                a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)] +
                    c[static_cast<std::size_t>(i)],
                1e-12);
  }

  // Broadcast / zero.
  P::broadcast(2.5).store(out.data());
  for (int i = 0; i < W; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 2.5);
  P::zero().store(out.data());
  for (int i = 0; i < W; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 0.0);

  // abs / max / horizontal reductions.
  P::abs(P::load(a.data())).store(out.data());
  for (int i = 0; i < W; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     std::abs(a[static_cast<std::size_t>(i)]));
  }
  double sum = 0.0;
  double maximum = a[0];
  for (int i = 0; i < W; ++i) {
    sum += a[static_cast<std::size_t>(i)];
    maximum = std::max(maximum, a[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(P::load(a.data()).horizontal_sum(), sum, 1e-12);
  EXPECT_DOUBLE_EQ(P::load(a.data()).horizontal_max(), maximum);

  // Streaming store writes the same values as a normal store.
  P::load(a.data()).stream(out.data());
  stream_fence();
  for (int i = 0; i < W; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i)]);
  }
}

TEST(Pack, ScalarLane) { exercise_pack<1>(); }

#if defined(__AVX2__)
TEST(Pack, Avx2Lanes) {
  if (!isa_supported(Isa::kAvx2)) GTEST_SKIP();
  exercise_pack<4>();
}

TEST(Pack, Avx2QuadBroadcast) {
  if (!isa_supported(Isa::kAvx2)) GTEST_SKIP();
  AlignedDoubles a = {1.0, 2.0, 3.0, 4.0};
  AlignedDoubles out(4);
  Pack<4>::quad_broadcast<2>(Pack<4>::load(a.data())).store(out.data());
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 3.0);
}
#endif

#if defined(__AVX512F__)
TEST(Pack, Avx512Lanes) {
  if (!isa_supported(Isa::kAvx512)) GTEST_SKIP();
  exercise_pack<8>();
}

TEST(Pack, Avx512QuadBroadcastIsPerHalf) {
  if (!isa_supported(Isa::kAvx512)) GTEST_SKIP();
  AlignedDoubles a = {1, 2, 3, 4, 5, 6, 7, 8};
  AlignedDoubles out(8);
  Pack<8>::quad_broadcast<1>(Pack<8>::load(a.data())).store(out.data());
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 2.0);
  for (int i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 6.0);
}

TEST(Pack, Avx512ConcatAndHalves) {
  if (!isa_supported(Isa::kAvx512)) GTEST_SKIP();
  AlignedDoubles lo = {1, 2, 3, 4};
  AlignedDoubles hi = {5, 6, 7, 8};
  AlignedDoubles out(8);
  const auto packed = Pack<8>::concat(lo.data(), hi.data());
  packed.store(out.data());
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], static_cast<double>(i + 1));
  }
  AlignedDoubles quad(4);
  packed.lower_half().store(quad.data());
  EXPECT_DOUBLE_EQ(quad[3], 4.0);
  packed.upper_half().store(quad.data());
  EXPECT_DOUBLE_EQ(quad[0], 5.0);
}
#endif

TEST(Aligned, PrefetchIsSafeOnAnyAddress) {
  // Prefetch is a hint; it must never fault, even on odd addresses.
  AlignedDoubles buffer(16, 1.0);
  prefetch_read(buffer.data() + 3);
  prefetch_write(reinterpret_cast<char*>(buffer.data()) + 5);
  SUCCEED();
}

}  // namespace
}  // namespace miniphi::simd
