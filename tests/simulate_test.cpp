// Tests for src/simulate: Yule trees and the sequence evolution simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "src/simulate/simulate.hpp"
#include "src/tree/splits.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::simulate {
namespace {

TEST(YuleTree, ProducesValidTreesOfRequestedSize) {
  Rng rng(1);
  for (const int ntaxa : {3, 5, 15, 40, 100}) {
    tree::Tree tree = yule_tree(ntaxa, rng, 0.5);
    EXPECT_EQ(tree.taxon_count(), ntaxa);
    EXPECT_NO_THROW(tree.validate());
  }
  EXPECT_THROW(yule_tree(2, rng), Error);
}

TEST(YuleTree, BranchLengthsArePositiveAndScaled) {
  Rng rng(2);
  tree::Tree tree = yule_tree(20, rng, 0.4);
  double total = 0.0;
  for (const tree::Slot* edge : const_cast<const tree::Tree&>(tree).edges()) {
    EXPECT_GT(edge->length, 0.0);
    total += edge->length;
  }
  // Total tree length of a Yule tree with depth 0.4 and 20 taxa is of order
  // n·depth; sanity-bound it loosely.
  EXPECT_GT(total, 0.4);
  EXPECT_LT(total, 20 * 0.4 * 4);
}

TEST(YuleTree, DeterministicGivenSeed) {
  Rng a(7), b(7);
  tree::Tree ta = yule_tree(12, a);
  tree::Tree tb = yule_tree(12, b);
  EXPECT_EQ(tree::robinson_foulds(ta, tb), 0);
}

TEST(Simulator, ProducesRequestedDimensions) {
  Rng rng(3);
  tree::Tree tree = yule_tree(9, rng);
  const model::GtrModel model(model::GtrParams::jc69(0.5));
  SimulationOptions options;
  options.sites = 777;
  options.record_categories = true;
  const auto result = simulate_alignment(tree, model, options, rng);
  EXPECT_EQ(result.alignment.taxon_count(), 9u);
  EXPECT_EQ(result.alignment.site_count(), 777u);
  EXPECT_EQ(result.site_categories.size(), 777u);
  for (const auto category : result.site_categories) EXPECT_LT(category, 4);
}

TEST(Simulator, BaseCompositionMatchesStationaryFrequencies) {
  Rng rng(4);
  model::GtrParams params;
  params.frequencies = {0.4, 0.1, 0.2, 0.3};
  params.alpha = 1.0;
  const model::GtrModel model(params);
  tree::Tree tree = yule_tree(12, rng, 0.5);
  SimulationOptions options;
  options.sites = 60000;
  const auto alignment = simulate_alignment(tree, model, options, rng).alignment;
  const auto freqs = alignment.empirical_base_frequencies();
  EXPECT_NEAR(freqs[0], 0.4, 0.02);
  EXPECT_NEAR(freqs[1], 0.1, 0.02);
  EXPECT_NEAR(freqs[2], 0.2, 0.02);
  EXPECT_NEAR(freqs[3], 0.3, 0.02);
}

TEST(Simulator, ShortBranchesPreserveSimilarity) {
  // With a very shallow tree, sequences should be nearly identical; with a
  // deep tree they should approach saturation (~25% pairwise identity gain
  // over random for JC).
  Rng rng(5);
  const model::GtrModel model(model::GtrParams::jc69());
  tree::Tree shallow = yule_tree(6, rng, 0.01);
  tree::Tree deep = yule_tree(6, rng, 8.0);
  SimulationOptions options;
  options.sites = 5000;

  const auto count_matches = [](const bio::Alignment& alignment) {
    std::size_t matches = 0;
    for (std::size_t s = 0; s < alignment.site_count(); ++s) {
      if (alignment.at(0, s) == alignment.at(1, s)) ++matches;
    }
    return static_cast<double>(matches) / static_cast<double>(alignment.site_count());
  };

  const double shallow_identity =
      count_matches(simulate_alignment(shallow, model, options, rng).alignment);
  const double deep_identity =
      count_matches(simulate_alignment(deep, model, options, rng).alignment);
  EXPECT_GT(shallow_identity, 0.95);
  EXPECT_LT(deep_identity, 0.45);
  EXPECT_GT(deep_identity, 0.15);  // never below random expectation
}

TEST(Simulator, RateHeterogeneityShowsUpAcrossSites) {
  // With tiny alpha most sites are invariant while a few are saturated.
  Rng rng(6);
  model::GtrParams params;
  params.alpha = 0.1;
  const model::GtrModel model(params);
  tree::Tree tree = yule_tree(10, rng, 1.0);
  SimulationOptions options;
  options.sites = 4000;
  options.record_categories = true;
  const auto result = simulate_alignment(tree, model, options, rng);

  std::size_t invariant = 0;
  for (std::size_t s = 0; s < result.alignment.site_count(); ++s) {
    bool all_same = true;
    for (std::size_t t = 1; t < result.alignment.taxon_count(); ++t) {
      if (result.alignment.at(t, s) != result.alignment.at(0, s)) {
        all_same = false;
        break;
      }
    }
    if (all_same) ++invariant;
  }
  // Two lowest categories of Γ(0.1) are essentially rate 0 → ≥ ~45% invariant.
  EXPECT_GT(invariant, result.alignment.site_count() * 2 / 5);
}

TEST(Simulator, PaperDatasetRecipe) {
  const auto alignment = paper_dataset(2000, 42);
  EXPECT_EQ(alignment.taxon_count(), 15u);  // the paper fixes 15 taxa
  EXPECT_EQ(alignment.site_count(), 2000u);
  // Same seed → identical data; different seed → different data.
  const auto again = paper_dataset(2000, 42);
  EXPECT_EQ(alignment.to_records()[3].sequence, again.to_records()[3].sequence);
  const auto other = paper_dataset(2000, 43);
  EXPECT_NE(alignment.to_records()[3].sequence, other.to_records()[3].sequence);
}

}  // namespace
}  // namespace miniphi::simulate
