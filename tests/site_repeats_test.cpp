// Cross-backend equivalence of the site-repeats likelihood path.
//
// The repeat-aware kernels must be numerically indistinguishable (≤1e-10
// relative) from the dense path on every compiled ISA, across random
// topologies, duplicated-column alignments, scaling-heavy long-branch
// instances, and long incremental topology-move sequences — the repeat
// class maps ride the same invalidation machinery as the CLAs, so the
// stress tests double as invalidation-correctness tests.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/tree/moves.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

using testutil::random_alignment;
using testutil::random_gtr_params;

/// Duplicates every column of `base` `copies` times (column-level repeats the
/// compressed pattern set would fold away, but subtree-level repeats remain
/// under uncompressed_patterns — the bench scenario).
bio::Alignment duplicate_columns(const bio::Alignment& base, int copies) {
  std::vector<std::string> names;
  std::vector<std::vector<bio::DnaCode>> rows;
  for (std::size_t t = 0; t < base.taxon_count(); ++t) {
    names.push_back(base.taxon_name(t));
    const auto row = base.row(t);
    std::vector<bio::DnaCode> out;
    out.reserve(row.size() * static_cast<std::size_t>(copies));
    for (int c = 0; c < copies; ++c) out.insert(out.end(), row.begin(), row.end());
    rows.push_back(std::move(out));
  }
  return bio::Alignment(std::move(names), std::move(rows));
}

class SiteRepeats : public ::testing::TestWithParam<simd::Isa> {
 protected:
  void SetUp() override {
    if (!simd::isa_supported(GetParam())) GTEST_SKIP() << "ISA not supported on this host";
  }

  static LikelihoodEngine::Config config_for(simd::Isa isa, bool repeats) {
    LikelihoodEngine::Config config;
    config.isa = isa;
    config.site_repeats = repeats;
    return config;
  }
};

TEST_P(SiteRepeats, MatchesDenseOnRandomInstances) {
  for (int instance = 0; instance < 4; ++instance) {
    Rng rng(static_cast<std::uint64_t>(instance) * 7901 + 3);
    const int ntaxa = 5 + instance * 6;
    const auto alignment = random_alignment(ntaxa, 150, rng, /*ambiguity=*/0.05);
    const auto patterns = bio::compress_patterns(alignment);
    const model::GtrModel model(random_gtr_params(rng));
    tree::Tree tree = tree::Tree::random(ntaxa, rng);

    LikelihoodEngine dense(patterns, model, tree, config_for(GetParam(), false));
    LikelihoodEngine repeats(patterns, model, tree, config_for(GetParam(), true));
    ASSERT_TRUE(repeats.site_repeats());
    for (tree::Slot* edge : tree.edges()) {
      const double want = dense.log_likelihood(edge);
      const double got = repeats.log_likelihood(edge);
      EXPECT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-10)
          << "instance=" << instance << " isa=" << simd::to_string(GetParam());
    }
    // Compressed random alignments still expose subtree-level repeats.
    EXPECT_LE(repeats.unique_site_ratio(), 1.0);
  }
}

TEST_P(SiteRepeats, DuplicatedColumnsShrinkUniqueClasses) {
  Rng rng(99);
  const int ntaxa = 12;
  const auto base = random_alignment(ntaxa, 80, rng);
  const auto wide = duplicate_columns(base, 4);
  // Uncompressed: column duplicates survive, so every inner node sees at
  // most 1/4 of its sites as unique classes.
  const auto patterns = bio::uncompressed_patterns(wide);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  LikelihoodEngine dense(patterns, model, tree, config_for(GetParam(), false));
  LikelihoodEngine repeats(patterns, model, tree, config_for(GetParam(), true));
  const double want = dense.log_likelihood(tree.tip(0));
  const double got = repeats.log_likelihood(tree.tip(0));
  EXPECT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-10);

  EXPECT_LE(repeats.unique_site_ratio(), 0.25 + 1e-12);
  for (int inner = 0; inner < tree.inner_count(); ++inner) {
    const int node_id = tree.taxon_count() + inner;
    const std::int64_t unique = repeats.node_unique_classes(node_id);
    if (unique == 0) continue;  // node not on the evaluated traversal
    EXPECT_LE(unique, repeats.slice_size() / 4);
  }

  // The dense engine reports the full width for every node.
  EXPECT_DOUBLE_EQ(dense.unique_site_ratio(), 1.0);
  EXPECT_EQ(dense.node_unique_classes(tree.taxon_count()), dense.slice_size());
}

TEST_P(SiteRepeats, NewviewStatsAndTraceCountOnlyUniqueClasses) {
  Rng rng(17);
  const int ntaxa = 10;
  const auto wide = duplicate_columns(random_alignment(ntaxa, 60, rng), 4);
  const auto patterns = bio::uncompressed_patterns(wide);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  KernelTrace trace;
  auto config = config_for(GetParam(), true);
  config.trace = &trace;
  LikelihoodEngine engine(patterns, model, tree, config);
  (void)engine.log_likelihood(tree.tip(0));

  // Computed sites must undercut represented sites by at least the 4×
  // duplication factor; stats and trace must agree on the computed total.
  const std::int64_t computed = trace.total_sites(TraceKernel::kNewview);
  const std::int64_t represented = trace.total_sites_represented(TraceKernel::kNewview);
  ASSERT_GT(computed, 0);
  EXPECT_LE(computed * 4, represented);
  EXPECT_EQ(computed, engine.stats(Kernel::kNewview).sites);
  EXPECT_EQ(represented,
            trace.call_count(TraceKernel::kNewview) * engine.slice_size());
}

TEST_P(SiteRepeats, ScalingHeavyLongBranchesMatchDense) {
  // Long branches on a deep tree force scale-counter increments; on the
  // repeat path a class's scale count must be shared by all its sites.
  Rng rng(4242);
  const int ntaxa = 28;
  const auto alignment = random_alignment(ntaxa, 90, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);
  for (tree::Slot* edge : tree.edges()) tree::Tree::set_length(edge, 4.0);

  LikelihoodEngine dense(patterns, model, tree, config_for(GetParam(), false));
  LikelihoodEngine repeats(patterns, model, tree, config_for(GetParam(), true));
  const double want = dense.log_likelihood(tree.tip(0));
  const double got = repeats.log_likelihood(tree.tip(0));
  ASSERT_TRUE(std::isfinite(want));
  EXPECT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-10);
}

TEST_P(SiteRepeats, DerivativesMatchDense) {
  Rng rng(31);
  const int ntaxa = 9;
  const auto alignment = random_alignment(ntaxa, 100, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  LikelihoodEngine dense(patterns, model, tree, config_for(GetParam(), false));
  LikelihoodEngine repeats(patterns, model, tree, config_for(GetParam(), true));
  for (tree::Slot* edge : tree.edges()) {
    dense.prepare_derivatives(edge);
    repeats.prepare_derivatives(edge);
    for (const double z : {0.05, 0.3, 1.5}) {
      const auto [df, ds] = dense.derivatives(z);
      const auto [rf, rs] = repeats.derivatives(z);
      EXPECT_NEAR(rf, df, std::abs(df) * 1e-10 + 1e-8);
      EXPECT_NEAR(rs, ds, std::abs(ds) * 1e-10 + 1e-8);
    }
  }
}

TEST_P(SiteRepeats, BranchOptimizationReusesClassMapsAndMatchesDense) {
  Rng rng(55);
  const int ntaxa = 11;
  const auto alignment = random_alignment(ntaxa, 120, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree dense_tree = tree::Tree::random(ntaxa, rng);
  tree::Tree repeat_tree(dense_tree);

  LikelihoodEngine dense(patterns, model, dense_tree, config_for(GetParam(), false));
  LikelihoodEngine repeats(patterns, model, repeat_tree, config_for(GetParam(), true));
  const double dense_lnl = dense.optimize_all_branches(dense_tree.tip(0), 2);
  const double repeat_lnl = repeats.optimize_all_branches(repeat_tree.tip(0), 2);
  EXPECT_NEAR(repeat_lnl, dense_lnl, std::abs(dense_lnl) * 1e-9 + 1e-7);

  // Branch-length optimization only calls invalidate_branch, so the class
  // maps built by the first traversal must have been reused verbatim: the
  // second smoothing pass may not have bumped any build version.  Probe via
  // a model change (values-only too) followed by one more evaluation.
  repeats.set_alpha(repeats.alpha() * 1.1);
  dense.set_alpha(dense.alpha() * 1.1);
  const double want = dense.log_likelihood(dense_tree.tip(0));
  const double got = repeats.log_likelihood(repeat_tree.tip(0));
  EXPECT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-8);
}

TEST_P(SiteRepeats, TopologyMoveStressAgainstDenseEngine) {
  // The repeats analogue of the engine's RandomMoveStressAgainstFreshEngine:
  // incremental NNI/SPR moves with invalidate_node, branch perturbations
  // with invalidate_branch, always comparing against a dense engine driven
  // through the same sequence.
  Rng rng(86420);
  const int ntaxa = 13;
  const auto alignment = random_alignment(ntaxa, 110, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(ntaxa, rng);

  LikelihoodEngine dense(patterns, model, tree, config_for(GetParam(), false));
  LikelihoodEngine repeats(patterns, model, tree, config_for(GetParam(), true));
  (void)dense.log_likelihood(tree.tip(0));
  (void)repeats.log_likelihood(tree.tip(0));

  const auto invalidate_both = [&](int node_id) {
    dense.invalidate_node(node_id);
    repeats.invalidate_node(node_id);
  };

  for (int step = 0; step < 50; ++step) {
    if (rng.below(2) == 0) {
      std::vector<tree::Slot*> internal;
      for (tree::Slot* e : tree.edges()) {
        if (!e->is_tip() && !e->back->is_tip()) internal.push_back(e);
      }
      tree::Slot* edge = internal[rng.below(internal.size())];
      ASSERT_TRUE(tree::nni(tree, edge, static_cast<int>(rng.below(2))));
      invalidate_both(edge->node_id);
      invalidate_both(edge->back->node_id);
    } else {
      const int inner =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(tree.inner_count())));
      tree::Slot* p = tree.inner_slot(inner, static_cast<int>(rng.below(3)));
      const auto record = tree::prune(tree, p);
      invalidate_both(record.left->node_id);
      invalidate_both(record.right->node_id);
      invalidate_both(p->node_id);
      const auto candidates = tree::insertion_candidates(record, 4);
      if (candidates.empty()) {
        tree::undo_prune(tree, record);
        invalidate_both(record.left->node_id);
        invalidate_both(record.right->node_id);
        continue;
      }
      tree::Slot* e = candidates[rng.below(candidates.size())];
      tree::Slot* other = e->back;
      tree::regraft(tree, record, e, rng.uniform(0.2, 0.8));
      invalidate_both(e->node_id);
      invalidate_both(other->node_id);
      invalidate_both(p->node_id);
    }
    if (step % 3 == 0) {
      // Pure branch-length change: the weaker invalidation must suffice.
      tree::Slot* edge = tree.edges()[rng.below(static_cast<std::uint64_t>(tree.edge_count()))];
      tree::Tree::set_length(edge, rng.uniform(0.01, 1.0));
      dense.invalidate_branch(edge->node_id);
      dense.invalidate_branch(edge->back->node_id);
      repeats.invalidate_branch(edge->node_id);
      repeats.invalidate_branch(edge->back->node_id);
    }
    tree.validate();

    tree::Slot* root = tree.edges()[rng.below(static_cast<std::uint64_t>(tree.edge_count()))];
    const double want = dense.log_likelihood(root);
    const double got = repeats.log_likelihood(root);
    ASSERT_NEAR(got, want, std::abs(want) * 1e-10 + 1e-10) << "step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Isas, SiteRepeats,
                         ::testing::Values(simd::Isa::kScalar, simd::Isa::kAvx2,
                                           simd::Isa::kAvx512),
                         [](const auto& param_info) { return simd::to_string(param_info.param); });

}  // namespace
}  // namespace miniphi::core
