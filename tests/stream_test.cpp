// Mixed-backend stream-executor suite (DESIGN.md §13): the kStreams
// dispatch of PartitionedEvaluator must be bit-identical across stream
// counts and thread counts for a fixed per-partition back-end assignment,
// and the cost-model-mixed assignment must agree with a uniform back-end to
// floating-point tolerance (different ISAs reorder the within-partition
// arithmetic, so cross-ISA results are close, not bit-equal).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/make_evaluator.hpp"
#include "src/core/partitioned.hpp"
#include "src/parallel/evaluator_factory.hpp"
#include "src/parallel/pool_parallel_for.hpp"
#include "src/parallel/worker_pool.hpp"
#include "src/platform/cost_model.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

class StreamFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    alignment_ = std::make_unique<bio::Alignment>(testutil::random_alignment(12, 2000, rng));
    model_ = std::make_unique<model::GtrModel>(testutil::random_gtr_params(rng));
    tree_ = std::make_unique<tree::Tree>(tree::Tree::random(12, rng));
    // Deliberately uneven gene sizes: two tiny partitions the cost model
    // should keep narrow, two large ones it should vectorize.
    specs_ = {{"tiny_a", 0, 40}, {"tiny_b", 40, 80}, {"big_a", 80, 1040}, {"big_b", 1040, 2000}};
  }

  /// Compressed pattern counts per partition — the planner's input.
  std::vector<std::int64_t> pattern_counts() {
    PartitionedEvaluator probe(*alignment_, specs_, *model_, *tree_);
    std::vector<std::int64_t> counts;
    for (int p = 0; p < probe.partition_count(); ++p) {
      counts.push_back(static_cast<std::int64_t>(probe.partition_patterns(p).pattern_count()));
    }
    return counts;
  }

  std::unique_ptr<bio::Alignment> alignment_;
  std::unique_ptr<model::GtrModel> model_;
  std::unique_ptr<tree::Tree> tree_;
  std::vector<PartitionSpec> specs_;
};

TEST_F(StreamFixture, BitIdenticalAcrossStreamCountsAndThreadCounts) {
  // The per-partition back-end choice depends only on the pattern count,
  // not the stream count, so every variant below runs identical kernels on
  // identical inputs and reduces in fixed partition order: EXPECT_EQ on
  // doubles, no tolerance.
  const auto counts = pattern_counts();
  const StreamPlan reference_plan =
      platform::plan_partition_streams(counts, 1);
  PartitionedEvaluator reference(*alignment_, specs_, *model_, *tree_, {}, reference_plan);
  const double expected = reference.log_likelihood(tree_->tip(0));
  EXPECT_LT(expected, 0.0);

  for (const int streams : {1, 2, 4}) {
    const StreamPlan plan = platform::plan_partition_streams(counts, streams);
    ASSERT_EQ(plan.partition_isa, reference_plan.partition_isa);
    for (const int workers : {1, 3}) {
      parallel::WorkerPool pool(workers);
      parallel::PoolParallelFor parallel_for(pool);
      PartitionedEvaluator evaluator(*alignment_, specs_, *model_, *tree_, {}, plan);
      evaluator.set_parallel_for(&parallel_for, PlanSchedule::kStreams);
      EXPECT_EQ(evaluator.log_likelihood(tree_->tip(0)), expected)
          << streams << " streams, " << workers << " workers";
    }
    // Serial stream dispatch (no executor attached) takes the same path.
    PartitionedEvaluator serial(*alignment_, specs_, *model_, *tree_, {}, plan);
    serial.set_parallel_for(nullptr, PlanSchedule::kStreams);
    EXPECT_EQ(serial.log_likelihood(tree_->tip(0)), expected) << streams << " streams, serial";
  }
}

TEST_F(StreamFixture, GradientsAreBitIdenticalAcrossStreamCounts) {
  const auto counts = pattern_counts();
  const StreamPlan reference_plan = platform::plan_partition_streams(counts, 1);
  PartitionedEvaluator reference(*alignment_, specs_, *model_, *tree_, {}, reference_plan);
  std::vector<BranchGradient> expected;
  ASSERT_TRUE(reference.gradient_all_branches(tree_->tip(0), expected));
  ASSERT_FALSE(expected.empty());

  parallel::WorkerPool pool(4);
  parallel::PoolParallelFor parallel_for(pool);
  for (const int streams : {2, 4}) {
    const StreamPlan plan = platform::plan_partition_streams(counts, streams);
    PartitionedEvaluator evaluator(*alignment_, specs_, *model_, *tree_, {}, plan);
    evaluator.set_parallel_for(&parallel_for, PlanSchedule::kStreams);
    std::vector<BranchGradient> got;
    ASSERT_TRUE(evaluator.gradient_all_branches(tree_->tip(0), got));
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].edge, expected[i].edge);
      EXPECT_EQ(got[i].first, expected[i].first) << "edge " << i << ", " << streams << " streams";
      EXPECT_EQ(got[i].second, expected[i].second) << "edge " << i;
    }
  }
}

TEST_F(StreamFixture, BranchOptimizationIsStreamInvariant) {
  // Newton branch optimization under streams drives prepare_derivatives /
  // derivatives through the same end-to-end tasks; optimized lengths and the
  // final likelihood must be bit-identical to the serial run with the same
  // back-end assignment.
  const auto counts = pattern_counts();
  const StreamPlan plan1 = platform::plan_partition_streams(counts, 1);
  tree::Tree tree_serial(*tree_);
  PartitionedEvaluator serial(*alignment_, specs_, *model_, tree_serial, {}, plan1);
  const double expected = serial.optimize_all_branches(tree_serial.tip(0), 2);

  parallel::WorkerPool pool(4);
  parallel::PoolParallelFor parallel_for(pool);
  const StreamPlan plan4 = platform::plan_partition_streams(counts, 4);
  tree::Tree tree(*tree_);
  PartitionedEvaluator evaluator(*alignment_, specs_, *model_, tree, {}, plan4);
  evaluator.set_parallel_for(&parallel_for, PlanSchedule::kStreams);
  EXPECT_EQ(evaluator.optimize_all_branches(tree.tip(0), 2), expected);
  for (int i = 0; i < tree.slot_count(); ++i) {
    EXPECT_EQ(tree.slot(i)->length, tree_serial.slot(i)->length);
  }
}

TEST_F(StreamFixture, CostModelMixedBackendsAgreeWithUniformScalar) {
  // Uniform scalar run: every partition on kScalar, one stream.
  EngineConfig scalar_config;
  scalar_config.isa = simd::Isa::kScalar;
  PartitionedEvaluator uniform(*alignment_, specs_, *model_, *tree_, scalar_config);
  const double expected = uniform.log_likelihood(tree_->tip(0));

  // Cost-model plan: tiny partitions stay scalar, large ones take the
  // widest profitable ISA.  Cross-ISA reductions reorder arithmetic, so the
  // comparison is tolerance-based.
  const auto counts = pattern_counts();
  const StreamPlan plan = platform::plan_partition_streams(counts, 2);
  EXPECT_EQ(plan.partition_isa[0], simd::Isa::kScalar);
  EXPECT_EQ(plan.partition_isa[1], simd::Isa::kScalar);
  EXPECT_EQ(plan.partition_isa[2], platform::choose_partition_isa(counts[2]));
  EXPECT_EQ(plan.partition_isa[3], platform::choose_partition_isa(counts[3]));

  parallel::WorkerPool pool(2);
  parallel::PoolParallelFor parallel_for(pool);
  PartitionedEvaluator mixed(*alignment_, specs_, *model_, *tree_, {}, plan);
  mixed.set_parallel_for(&parallel_for, PlanSchedule::kStreams);
  EXPECT_NEAR(mixed.log_likelihood(tree_->tip(0)), expected, std::abs(expected) * 1e-10);

  // The evaluator reports the back-ends actually in force.
  for (int p = 0; p < mixed.partition_count(); ++p) {
    EXPECT_EQ(mixed.partition_isa(p), plan.partition_isa[static_cast<std::size_t>(p)]);
  }
  EXPECT_EQ(mixed.isa(), *std::max_element(plan.partition_isa.begin(), plan.partition_isa.end()));
}

TEST_F(StreamFixture, StreamCountersCountCallsTasksAndRegions) {
  const auto counts = pattern_counts();
  const StreamPlan plan = platform::plan_partition_streams(counts, 2);
  ASSERT_EQ(plan.stream_count, 2);

  parallel::WorkerPool pool(2);
  parallel::PoolParallelFor parallel_for(pool);
  PartitionedEvaluator evaluator(*alignment_, specs_, *model_, *tree_, {}, plan);
  evaluator.set_parallel_for(&parallel_for, PlanSchedule::kStreams);
  EXPECT_EQ(evaluator.stream_counters().calls, 0);

  (void)evaluator.log_likelihood(tree_->tip(0));
  const StreamCounters after_lnl = evaluator.stream_counters();
  EXPECT_EQ(after_lnl.calls, 1);
  EXPECT_EQ(after_lnl.regions, 1);  // one barrier for the whole evaluation
  EXPECT_EQ(after_lnl.tasks, 2);    // one end-to-end task per stream group
  EXPECT_EQ(evaluator.merged_plan_counters().traversals, 0);  // merged queue stood down

  (void)evaluator.log_likelihood(tree_->tip(0));
  EXPECT_EQ(evaluator.stream_counters().calls, 2);

  // Serial stream dispatch counts calls and tasks but issues no regions.
  PartitionedEvaluator serial(*alignment_, specs_, *model_, *tree_, {}, plan);
  serial.set_parallel_for(nullptr, PlanSchedule::kStreams);
  (void)serial.log_likelihood(tree_->tip(0));
  EXPECT_EQ(serial.stream_counters().calls, 1);
  EXPECT_EQ(serial.stream_counters().tasks, 2);
  EXPECT_EQ(serial.stream_counters().regions, 0);

  // Every stream group owns at least one partition.
  std::vector<int> per_stream(2, 0);
  for (const int s : serial.stream_plan().partition_stream) {
    ++per_stream[static_cast<std::size_t>(s)];
  }
  EXPECT_GT(per_stream[0], 0);
  EXPECT_GT(per_stream[1], 0);
}

TEST_F(StreamFixture, FactoriesMatchDirectConstructionBitExactly) {
  const auto counts = pattern_counts();
  const StreamPlan plan = platform::plan_partition_streams(counts, 2);
  PartitionedEvaluator direct(*alignment_, specs_, *model_, *tree_, {}, plan);
  const double expected = direct.log_likelihood(tree_->tip(0));

  // Core factory (serial).
  const auto from_core = make_evaluator(*alignment_, specs_, *model_, *tree_, {}, plan);
  EXPECT_EQ(from_core->log_likelihood(tree_->tip(0)), expected);
  EXPECT_NE(from_core->gtr_model(), nullptr);
  EXPECT_TRUE(from_core->set_gtr_model(*model_));

  // Parallel factory (pooled stream dispatch).
  parallel::WorkerPool pool(2);
  const auto from_parallel =
      parallel::make_stream_evaluator(pool, *alignment_, specs_, *model_, *tree_, {}, plan);
  EXPECT_EQ(from_parallel->log_likelihood(tree_->tip(0)), expected);
  EXPECT_EQ(from_parallel->isa(), direct.isa());
}

TEST_F(StreamFixture, StreamsWorkUnderTightClaBudget) {
  // The merged queue stands down under a CLA budget, but stream dispatch
  // runs the engines' internal executors (with their pin discipline), so
  // kStreams stays available — and bit-identical to the full-budget run on
  // the same back-end assignment.
  const auto counts = pattern_counts();
  const StreamPlan plan = platform::plan_partition_streams(counts, 2);
  PartitionedEvaluator full(*alignment_, specs_, *model_, *tree_, {}, plan);
  const double expected = full.log_likelihood(tree_->tip(0));

  EngineConfig tight;
  tight.cla_buffers = 4;
  parallel::WorkerPool pool(2);
  parallel::PoolParallelFor parallel_for(pool);
  PartitionedEvaluator budgeted(*alignment_, specs_, *model_, *tree_, tight, plan);
  budgeted.set_parallel_for(&parallel_for, PlanSchedule::kStreams);
  EXPECT_EQ(budgeted.log_likelihood(tree_->tip(0)), expected);
}

TEST_F(StreamFixture, RejectsMalformedStreamPlans) {
  StreamPlan bad_stream;
  bad_stream.stream_count = 2;
  bad_stream.partition_stream = {0, 1, 2, 0};  // stream id 2 out of range
  EXPECT_THROW(PartitionedEvaluator(*alignment_, specs_, *model_, *tree_, {}, bad_stream), Error);

  StreamPlan bad_size;
  bad_size.partition_isa = {simd::Isa::kScalar};  // 1 entry for 4 partitions
  EXPECT_THROW(PartitionedEvaluator(*alignment_, specs_, *model_, *tree_, {}, bad_size), Error);
}

}  // namespace
}  // namespace miniphi::core
