#include "tests/testutil.hpp"

#include <array>

namespace miniphi::testutil {
namespace {

using Conditional = std::vector<std::array<double, 16>>;  // [pattern][rate*4+state]

/// Probability-space conditional likelihoods of the subtree behind `slot`.
Conditional conditional_down(const tree::Slot* slot, const bio::PatternSet& patterns,
                             const model::GtrModel& model) {
  const std::size_t npat = patterns.pattern_count();
  Conditional out(npat);
  if (slot->is_tip()) {
    const auto& codes = patterns.tip_rows[static_cast<std::size_t>(slot->node_id)];
    for (std::size_t s = 0; s < npat; ++s) {
      for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < 4; ++i) {
          out[s][static_cast<std::size_t>(c * 4 + i)] = (codes[s] & (1 << i)) ? 1.0 : 0.0;
        }
      }
    }
    return out;
  }

  const Conditional left = conditional_down(slot->child1(), patterns, model);
  const Conditional right = conditional_down(slot->child2(), patterns, model);
  const double z1 = slot->next->length;
  const double z2 = slot->next->next->length;
  const auto& rates = model.gamma_rates();

  for (int c = 0; c < 4; ++c) {
    const auto p1 = model.transition_matrix(z1, rates[static_cast<std::size_t>(c)]);
    const auto p2 = model.transition_matrix(z2, rates[static_cast<std::size_t>(c)]);
    for (std::size_t s = 0; s < npat; ++s) {
      for (int i = 0; i < 4; ++i) {
        double a = 0.0;
        double b = 0.0;
        for (int j = 0; j < 4; ++j) {
          a += p1[static_cast<std::size_t>(i * 4 + j)] * left[s][static_cast<std::size_t>(c * 4 + j)];
          b += p2[static_cast<std::size_t>(i * 4 + j)] * right[s][static_cast<std::size_t>(c * 4 + j)];
        }
        out[s][static_cast<std::size_t>(c * 4 + i)] = a * b;
      }
    }
  }
  return out;
}

}  // namespace

double brute_force_log_likelihood(const tree::Tree& tree, const bio::PatternSet& patterns,
                                  const model::GtrModel& model) {
  // Virtual root on the branch at tip 0: L_s = Σ_c ¼ Σ_i π_i tip0[i] (P x_q)[c,i].
  const tree::Slot* root = tree.tip(0);
  const tree::Slot* q = root->back;
  const Conditional below = conditional_down(q, patterns, model);
  const auto& codes = patterns.tip_rows[0];
  const auto& pi = model.frequencies();
  const auto& rates = model.gamma_rates();

  double total = 0.0;
  for (std::size_t s = 0; s < patterns.pattern_count(); ++s) {
    double site = 0.0;
    for (int c = 0; c < 4; ++c) {
      const auto p = model.transition_matrix(root->length, rates[static_cast<std::size_t>(c)]);
      for (int i = 0; i < 4; ++i) {
        if (!(codes[s] & (1 << i))) continue;
        double inner = 0.0;
        for (int j = 0; j < 4; ++j) {
          inner += p[static_cast<std::size_t>(i * 4 + j)] *
                   below[s][static_cast<std::size_t>(c * 4 + j)];
        }
        site += 0.25 * pi[static_cast<std::size_t>(i)] * inner;
      }
    }
    total += patterns.weights[s] * std::log(site);
  }
  return total;
}

}  // namespace miniphi::testutil
