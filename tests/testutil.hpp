// Shared helpers for the miniphi test suite.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "src/bio/alignment.hpp"
#include "src/bio/patterns.hpp"
#include "src/model/gtr.hpp"
#include "src/tree/tree.hpp"
#include "src/util/rng.hpp"

namespace miniphi::testutil {

/// Random DNA alignment (pure A/C/G/T plus optional ambiguity fraction).
inline bio::Alignment random_alignment(int ntaxa, int nsites, Rng& rng,
                                       double ambiguity_fraction = 0.0) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  static const char kAmbiguous[] = {'N', '-', 'R', 'Y', 'W', 'S'};
  io::SequenceSet records;
  for (int t = 0; t < ntaxa; ++t) {
    std::string seq;
    seq.reserve(static_cast<std::size_t>(nsites));
    for (int s = 0; s < nsites; ++s) {
      if (ambiguity_fraction > 0.0 && rng.uniform() < ambiguity_fraction) {
        seq.push_back(kAmbiguous[rng.below(6)]);
      } else {
        seq.push_back(kBases[rng.below(4)]);
      }
    }
    records.push_back({"taxon" + std::to_string(t), std::move(seq)});
  }
  return bio::Alignment(records);
}

/// Random valid GTR parameters.
inline model::GtrParams random_gtr_params(Rng& rng) {
  model::GtrParams params;
  for (auto& rate : params.exchangeabilities) rate = rng.uniform(0.3, 3.0);
  params.exchangeabilities.back() = 1.0;
  double sum = 0.0;
  for (auto& freq : params.frequencies) {
    freq = rng.uniform(0.1, 1.0);
    sum += freq;
  }
  for (auto& freq : params.frequencies) freq /= sum;
  params.alpha = rng.uniform(0.2, 2.5);
  return params;
}

/// Taxon names t0..t{n-1} for Newick round trips.
inline std::vector<std::string> taxon_names(int ntaxa) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(ntaxa));
  for (int i = 0; i < ntaxa; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

/// Brute-force Felsenstein pruning in probability space — an independent
/// reference for the engine's eigenspace computation.  O(sites · nodes · 16)
/// with plain transition matrices from the model; no scaling (use short
/// trees / few taxa so no underflow occurs).
double brute_force_log_likelihood(const tree::Tree& tree, const bio::PatternSet& patterns,
                                  const model::GtrModel& model);

}  // namespace miniphi::testutil
