// Tests for the flat traversal-plan layer (src/core/traversal_plan): planner
// invariants, iterative planning on pathologically deep trees, the dense
// engine's external plan protocol, and epoch-based plan caching under
// randomized topology and branch-length changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "src/core/cat/cat_engine.hpp"
#include "src/core/engine.hpp"
#include "src/obs/metrics.hpp"
#include "src/tree/moves.hpp"
#include "tests/testutil.hpp"

namespace miniphi::core {
namespace {

using testutil::random_alignment;
using testutil::random_gtr_params;

/// Structural invariants every plan must satisfy: ops are in post-order
/// (children before parents), an op's level is 1 + the deepest child level,
/// and the by-level index is a permutation of the ops grouped by level.
void check_plan_invariants(const TraversalPlan& plan) {
  const auto ops = plan.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const PlfOp& op = ops[i];
    ASSERT_NE(op.slot, nullptr);
    EXPECT_FALSE(op.slot->is_tip());
    EXPECT_EQ(op.node_id, op.slot->node_id);
    std::int32_t child_level = 0;
    for (const std::int32_t child : {op.left_op, op.right_op}) {
      if (child < 0) continue;
      ASSERT_LT(child, static_cast<std::int32_t>(i));
      child_level = std::max(child_level, ops[static_cast<std::size_t>(child)].level);
    }
    EXPECT_EQ(op.level, child_level + 1);
  }

  std::vector<int> seen(ops.size(), 0);
  std::int64_t listed = 0;
  std::int64_t widest = 0;
  for (int level = 1; level <= plan.levels(); ++level) {
    const auto level_ops = plan.level_ops(level);
    widest = std::max(widest, static_cast<std::int64_t>(level_ops.size()));
    for (const std::int32_t op : level_ops) {
      EXPECT_EQ(ops[static_cast<std::size_t>(op)].level, level);
      EXPECT_EQ(seen[static_cast<std::size_t>(op)]++, 0);
      ++listed;
    }
  }
  EXPECT_EQ(listed, plan.op_count());
  EXPECT_EQ(widest, plan.max_level_width());
}

/// Full-traversal plan toward (tip0, tip0->back) with nothing cached.
TraversalPlan full_plan(tree::Tree& tree) {
  TraversalPlanner planner;
  TraversalPlan plan;
  tree::Slot* const goals[2] = {tree.tip(0), tree.tip(0)->back};
  planner.build(std::span<tree::Slot* const>(goals),
                [](const tree::Slot*) { return false; }, plan);
  return plan;
}

TEST(TraversalPlanner, FullTraversalCoversEveryInnerSlotOnce) {
  Rng rng(11);
  tree::Tree tree = tree::Tree::random(24, rng);
  const TraversalPlan plan = full_plan(tree);

  EXPECT_EQ(plan.op_count(), tree.inner_count());
  ASSERT_EQ(plan.roots().size(), 2u);
  EXPECT_EQ(plan.roots()[0].slot, tree.tip(0));
  EXPECT_EQ(plan.roots()[0].op, -1);  // tip goal: nothing to compute
  EXPECT_EQ(plan.roots()[1].slot, tree.tip(0)->back);
  EXPECT_EQ(plan.roots()[1].op, plan.op_count() - 1);  // the goal runs last
  check_plan_invariants(plan);

  // Same slot set as the engine-independent reference traversal (the tip
  // itself carries no CLA, so the reference starts at the inner end).
  const auto reference = tree.full_traversal(tree.tip(0)->back);
  std::vector<int> want;
  for (const tree::Slot* slot : reference) want.push_back(slot->slot_index);
  std::vector<int> got;
  for (const PlfOp& op : plan.ops()) got.push_back(op.slot->slot_index);
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(TraversalPlanner, AllValidSubtreesYieldEmptyPlanWithRoots) {
  Rng rng(12);
  tree::Tree tree = tree::Tree::random(12, rng);
  TraversalPlanner planner;
  TraversalPlan plan;
  tree::Slot* const goals[2] = {tree.tip(0), tree.tip(0)->back};
  planner.build(std::span<tree::Slot* const>(goals),
                [](const tree::Slot*) { return true; }, plan);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.levels(), 0);
  EXPECT_EQ(plan.max_level_width(), 0);
  ASSERT_EQ(plan.roots().size(), 2u);
  EXPECT_EQ(plan.roots()[0].op, -1);
  EXPECT_EQ(plan.roots()[1].op, -1);
}

TEST(TraversalPlanner, SingleInvalidSlotPlansTheAncestorChain) {
  // One stale CLA deep in an otherwise-valid tree must replan exactly the
  // path from that slot up to the goal (the RAxML partial-traversal rule).
  Rng rng(13);
  tree::Tree tree = tree::Tree::random(20, rng);
  tree::Slot* goal = tree.tip(0)->back;
  tree::Slot* stale = goal;
  for (int depth = 0; depth < 3 && !stale->child1()->is_tip(); ++depth) {
    stale = stale->child1();
  }
  ASSERT_NE(stale, goal);

  TraversalPlanner planner;
  TraversalPlan plan;
  tree::Slot* const goals[1] = {goal};
  planner.build(std::span<tree::Slot* const>(goals),
                [stale](const tree::Slot* slot) { return slot != stale; }, plan);
  check_plan_invariants(plan);

  // A pure chain: the stale slot first, then each ancestor referencing the
  // previous op as its only in-plan child.
  ASSERT_GT(plan.op_count(), 1);
  EXPECT_EQ(plan.ops()[0].slot, stale);
  EXPECT_EQ(plan.roots()[0].op, plan.op_count() - 1);
  EXPECT_EQ(plan.levels(), static_cast<int>(plan.op_count()));
  EXPECT_EQ(plan.max_level_width(), 1);
  for (std::size_t i = 1; i < plan.ops().size(); ++i) {
    const PlfOp& op = plan.ops()[i];
    const std::int32_t prev = static_cast<std::int32_t>(i) - 1;
    EXPECT_TRUE((op.left_op == prev && op.right_op == -1) ||
                (op.left_op == -1 && op.right_op == prev));
  }
}

/// Maximally unbalanced tree: tips 0 and 1 on the first inner node, then a
/// chain of inner nodes each carrying one more tip.  Depth grows linearly
/// with the taxon count — the worst case for any recursive traversal.
tree::Tree caterpillar(int ntaxa) {
  tree::Tree tree(ntaxa);
  tree.connect(tree.tip(0), tree.inner_slot(0, 0), 0.1);
  tree.connect(tree.tip(1), tree.inner_slot(0, 1), 0.1);
  for (int i = 1; i <= ntaxa - 3; ++i) {
    tree.connect(tree.inner_slot(i - 1, 2), tree.inner_slot(i, 0), 0.1);
    tree.connect(tree.tip(i + 1), tree.inner_slot(i, 1), 0.1);
  }
  tree.connect(tree.inner_slot(ntaxa - 3, 2), tree.tip(ntaxa - 1), 0.1);
  tree.validate();
  return tree;
}

TEST(TraversalPlanner, TenThousandTaxonCaterpillarPlansWithoutRecursion) {
  // Regression for the explicit-stack planner: a 10k-taxon caterpillar is
  // ~10k dependency levels deep, far past what per-node recursion survives.
  const int ntaxa = 10000;
  tree::Tree tree = caterpillar(ntaxa);
  const TraversalPlan plan = full_plan(tree);
  EXPECT_EQ(plan.op_count(), ntaxa - 2);
  EXPECT_EQ(plan.levels(), ntaxa - 2);  // a pure dependency chain
  EXPECT_EQ(plan.max_level_width(), 1);
  check_plan_invariants(plan);
}

TEST(TraversalPlanner, CaterpillarLikelihoodRunsEndToEnd) {
  // The same depth through the whole engine stack: plan, execute, evaluate.
  Rng rng(17);
  const int ntaxa = 10000;
  const auto alignment = random_alignment(ntaxa, 6, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(model::GtrParams::jc69(0.8));
  tree::Tree tree = caterpillar(ntaxa);

  LikelihoodEngine engine(patterns, model, tree);
  const double value = engine.log_likelihood(tree.tip(0));
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_LT(value, 0.0);
  EXPECT_EQ(engine.plan_counters().executed_ops, ntaxa - 2);
}

TEST(DensePlanProtocol, ExternalExecutionMatchesInternalTraversal) {
  Rng rng(21);
  const auto alignment = random_alignment(10, 200, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);

  LikelihoodEngine external(patterns, model, tree);
  tree::Slot* edge = tree.tip(0);

  // Build once, fetch again before executing: second fetch reuses the
  // cached plan object without a rebuild.
  const TraversalPlan* plan = external.plan_traversal(edge);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->op_count(), tree.inner_count());
  check_plan_invariants(*plan);
  EXPECT_EQ(external.plan_traversal(edge), plan);
  EXPECT_EQ(external.plan_counters().builds, 1);
  EXPECT_EQ(external.plan_counters().reuses, 1);

  // Run every level externally (the partitioned/wavefront executors' path),
  // commit, and the engine considers the traversal satisfied.
  for (int level = 1; level <= plan->levels(); ++level) {
    external.execute_plan_level(*plan, level);
  }
  external.commit_planned_traversal(edge);
  EXPECT_EQ(external.plan_traversal(edge), nullptr);

  // log_likelihood now skips straight to the root kernel, and the result is
  // bit-identical to an engine that traversed internally.
  const double got = external.log_likelihood(edge);
  LikelihoodEngine internal(patterns, model, tree);
  EXPECT_EQ(got, internal.log_likelihood(edge));
  EXPECT_EQ(external.stats(Kernel::kNewview).calls, internal.stats(Kernel::kNewview).calls);
  EXPECT_GE(external.plan_counters().cache_hits, 1);
}

TEST(PlanCache, RandomMovesReusePlansAndStayBitIdentical) {
  // Randomized NNI/SPR moves plus branch-length-only invalidate_branch
  // changes: re-evaluating an unchanged edge must hit the satisfied-plan
  // fast path (no newview runs), every likelihood must be bit-identical to
  // a fresh engine over the same tree, and the plan cache must absorb a
  // substantial share of the traversals.
  Rng rng(4242);
  const auto alignment = random_alignment(14, 120, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(14, rng);

  LikelihoodEngine::Config config;
  config.metrics = obs::MetricsMode::kOn;
  LikelihoodEngine engine(patterns, model, tree, config);

  // The registry is process-global, so metric assertions work on deltas.
  std::int64_t builds_before = 0;
  std::int64_t hits_before = 0;
  if (obs::kMetricsCompiled) {
    obs::Registry& registry = obs::Registry::instance();
    builds_before = registry.value(registry.counter("plan.builds"));
    hits_before = registry.value(registry.counter("plan.cache_hits"));
  }

  const int steps = 40;
  for (int step = 0; step < steps; ++step) {
    switch (rng.below(3)) {
      case 0: {  // NNI across a random internal edge
        std::vector<tree::Slot*> internal;
        for (tree::Slot* e : tree.edges()) {
          if (!e->is_tip() && !e->back->is_tip()) internal.push_back(e);
        }
        tree::Slot* edge = internal[rng.below(internal.size())];
        ASSERT_TRUE(tree::nni(tree, edge, static_cast<int>(rng.below(2))));
        engine.invalidate_node(edge->node_id);
        engine.invalidate_node(edge->back->node_id);
        break;
      }
      case 1: {  // SPR within radius 4
        const int inner =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(tree.inner_count())));
        tree::Slot* p = tree.inner_slot(inner, static_cast<int>(rng.below(3)));
        const auto record = tree::prune(tree, p);
        engine.invalidate_node(record.left->node_id);
        engine.invalidate_node(record.right->node_id);
        engine.invalidate_node(p->node_id);
        const auto candidates = tree::insertion_candidates(record, 4);
        if (candidates.empty()) {
          tree::undo_prune(tree, record);
          engine.invalidate_node(record.left->node_id);
          engine.invalidate_node(record.right->node_id);
          break;
        }
        tree::Slot* e = candidates[rng.below(candidates.size())];
        tree::Slot* other = e->back;
        tree::regraft(tree, record, e, rng.uniform(0.2, 0.8));
        engine.invalidate_node(e->node_id);
        engine.invalidate_node(other->node_id);
        engine.invalidate_node(p->node_id);
        break;
      }
      default: {  // branch-length-only change
        tree::Slot* edge =
            tree.edges()[rng.below(static_cast<std::uint64_t>(tree.edge_count()))];
        tree::Tree::set_length(edge, rng.uniform(0.01, 1.0));
        engine.invalidate_branch(edge->node_id);
        engine.invalidate_branch(edge->back->node_id);
        break;
      }
    }
    tree.validate();

    tree::Slot* root = tree.edges()[rng.below(static_cast<std::uint64_t>(tree.edge_count()))];
    const double first = engine.log_likelihood(root);
    const auto newviews = engine.stats(Kernel::kNewview).calls;
    const double second = engine.log_likelihood(root);
    EXPECT_EQ(first, second) << "step " << step;
    EXPECT_EQ(engine.stats(Kernel::kNewview).calls, newviews)
        << "satisfied plan must not re-run newview, step " << step;

    LikelihoodEngine fresh(patterns, model, tree);
    EXPECT_EQ(first, fresh.log_likelihood(root)) << "step " << step;
  }

  const PlanCounters& counters = engine.plan_counters();
  EXPECT_GE(counters.cache_hits, steps);  // every repeat evaluation hit
  EXPECT_GT(counters.builds, 0);
  EXPECT_LT(counters.builds, 2 * steps);  // caching absorbed the repeats
  if (obs::kMetricsCompiled) {
    obs::Registry& registry = obs::Registry::instance();
    EXPECT_EQ(registry.value(registry.counter("plan.builds")) - builds_before,
              counters.builds);
    EXPECT_EQ(registry.value(registry.counter("plan.cache_hits")) - hits_before,
              counters.cache_hits);
  }
}

TEST(PlanCache, CatEngineSharesTheCachingProtocol) {
  // The CAT and general engines run traversals through the shared PlanCache;
  // the same satisfied/rebuild epoch protocol must hold there.
  Rng rng(31);
  const auto alignment = random_alignment(10, 150, rng);
  const auto patterns = bio::compress_patterns(alignment);
  const model::GtrModel model(random_gtr_params(rng));
  tree::Tree tree = tree::Tree::random(10, rng);

  CatEngine engine(patterns, model, tree, 4);
  const double first = engine.log_likelihood(tree.tip(0));
  EXPECT_EQ(engine.plan_counters().builds, 1);
  EXPECT_EQ(first, engine.log_likelihood(tree.tip(0)));
  EXPECT_EQ(engine.plan_counters().cache_hits, 1);

  // Any CLA state change retires the satisfied plan.
  engine.invalidate_node(tree.tip(0)->back->node_id);
  const double third = engine.log_likelihood(tree.tip(0));
  EXPECT_EQ(first, third);
  EXPECT_EQ(engine.plan_counters().builds, 2);
}

}  // namespace
}  // namespace miniphi::core
