// Tests for src/tree: structure invariants, Newick round trips, traversal,
// SPR/NNI moves with undo, splits/RF, parsimony.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/tree/moves.hpp"
#include "src/tree/parsimony.hpp"
#include "src/tree/splits.hpp"
#include "src/tree/tree.hpp"
#include "src/util/error.hpp"
#include "tests/testutil.hpp"

namespace miniphi::tree {
namespace {

TEST(Tree, CountsAreConsistent) {
  Tree tree(7);
  EXPECT_EQ(tree.taxon_count(), 7);
  EXPECT_EQ(tree.inner_count(), 5);
  EXPECT_EQ(tree.edge_count(), 11);
  EXPECT_EQ(tree.slot_count(), 22);
  EXPECT_THROW(Tree(2), Error);
}

class RandomTree : public ::testing::TestWithParam<int> {};

TEST_P(RandomTree, IsValidBinaryUnrooted) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Tree tree = Tree::random(GetParam() + 3, rng);
  EXPECT_NO_THROW(tree.validate());
  EXPECT_EQ(static_cast<int>(tree.edges().size()), tree.edge_count());
  // Every tip connects to an inner node.
  for (int i = 0; i < tree.taxon_count(); ++i) {
    EXPECT_FALSE(tree.tip(i)->back->is_tip());
  }
}

TEST_P(RandomTree, CopyIsDeepAndEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  Tree tree = Tree::random(GetParam() + 4, rng);
  Tree copy(tree);
  copy.validate();
  EXPECT_EQ(robinson_foulds(tree, copy), 0);
  // Mutating the copy must not affect the original.
  Tree::set_length(copy.tip(0), 9.9);
  EXPECT_NE(tree.tip(0)->length, 9.9);
}

TEST_P(RandomTree, NewickRoundTripPreservesTopology) {
  const int ntaxa = GetParam() + 4;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  Tree tree = Tree::random(ntaxa, rng);
  const auto names = testutil::taxon_names(ntaxa);
  const std::string newick = tree.to_newick(names);
  const auto ast = io::parse_newick(newick);
  Tree parsed = Tree::from_newick(*ast, names);
  EXPECT_EQ(robinson_foulds(tree, parsed), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTree, ::testing::Values(0, 1, 2, 5, 10, 20, 47));

TEST(Tree, FromNewickTrifurcatingRoot) {
  const auto ast = io::parse_newick("((t0:0.1,t1:0.2):0.3,t2:0.4,t3:0.5);");
  Tree tree = Tree::from_newick(*ast, testutil::taxon_names(4));
  tree.validate();
  EXPECT_EQ(tree.taxon_count(), 4);
}

TEST(Tree, FromNewickCollapsesRootedTrees) {
  // Rooted (binary root) input: root branch lengths are fused.
  const auto ast = io::parse_newick("((t0:0.1,t1:0.2):0.3,t2:0.4);");
  Tree tree = Tree::from_newick(*ast, testutil::taxon_names(3));
  tree.validate();
  // Fused branch t2<->inner should be 0.3 + 0.4.
  EXPECT_NEAR(tree.tip(2)->length, 0.7, 1e-12);
}

TEST(Tree, FromNewickRejectsBadInput) {
  const auto names3 = testutil::taxon_names(3);
  EXPECT_THROW(Tree::from_newick(*io::parse_newick("(t0:1,t1:1,zzz:1);"), names3), Error);
  EXPECT_THROW(Tree::from_newick(*io::parse_newick("(t0:1,t1:1,t2:1,t3:1);"), names3), Error);
  // Multifurcation below the root.
  const auto names5 = testutil::taxon_names(5);
  EXPECT_THROW(Tree::from_newick(*io::parse_newick("((t0,t1,t2),t3,t4);"), names5), Error);
}

TEST(Tree, TraversalIsPostOrderAndComplete) {
  Rng rng(3);
  Tree tree = Tree::random(10, rng);
  const auto order = tree.full_traversal(tree.tip(0)->back);
  // All 8 inner nodes appear exactly once...
  std::set<int> nodes;
  for (const Slot* s : order) nodes.insert(s->node_id);
  EXPECT_EQ(order.size(), 8u);
  EXPECT_EQ(nodes.size(), 8u);
  // ...and children always precede parents.
  std::set<const Slot*> done;
  for (const Slot* s : order) {
    for (const Slot* child : {s->child1(), s->child2()}) {
      if (!child->is_tip()) {
        EXPECT_TRUE(done.count(child)) << "child after parent";
      }
    }
    done.insert(s);
  }
}

TEST(Tree, PartialTraversalRespectsValidity) {
  Rng rng(4);
  Tree tree = Tree::random(8, rng);
  Slot* goal = tree.tip(0)->back;
  // Nothing valid: full list.  Everything valid: empty list.
  EXPECT_EQ(tree.traversal(goal, [](const Slot*) { return true; }).size(), 6u);
  EXPECT_TRUE(tree.traversal(goal, [](const Slot*) { return false; }).empty());
}

TEST(Moves, PruneRegraftChangesTopologyAndUndoRestoresIt) {
  Rng rng(11);
  Tree tree = Tree::random(12, rng);
  const Tree original(tree);

  // Prune some inner node with a tip subtree behind it.
  Slot* p = tree.tip(5)->back;
  ASSERT_FALSE(p->is_tip());
  const auto record = prune(tree, p);

  // Regraft into a distant edge.
  const auto candidates = insertion_candidates(record, 3);
  ASSERT_FALSE(candidates.empty());
  regraft(tree, record, candidates.back());
  tree.validate();
  EXPECT_GT(robinson_foulds(original, tree), 0);

  // Remove the graft and restore the original position.
  ungraft(tree, record);
  undo_prune(tree, record);
  tree.validate();
  EXPECT_EQ(robinson_foulds(original, tree), 0);

  // Branch lengths restored too.
  for (int i = 0; i < tree.slot_count(); ++i) {
    EXPECT_DOUBLE_EQ(tree.slot(i)->length, original.slot(i)->length);
  }
}

TEST(Moves, PrunePreservesTotalPathLength) {
  Rng rng(12);
  Tree tree = Tree::random(9, rng);
  Slot* p = tree.tip(2)->back;
  const double joined = p->next->length + p->next->next->length;
  const auto record = prune(tree, p);
  EXPECT_DOUBLE_EQ(record.left->length, joined);
  undo_prune(tree, record);
  tree.validate();
}

TEST(Moves, NniTwiceIsIdentity) {
  Rng rng(13);
  Tree tree = Tree::random(10, rng);
  const Tree original(tree);
  Slot* internal = nullptr;
  for (Slot* e : tree.edges()) {
    if (!e->is_tip() && !e->back->is_tip()) {
      internal = e;
      break;
    }
  }
  ASSERT_NE(internal, nullptr);
  for (const int variant : {0, 1}) {
    ASSERT_TRUE(nni(tree, internal, variant));
    tree.validate();
    EXPECT_GT(robinson_foulds(original, tree), 0);
    ASSERT_TRUE(nni(tree, internal, variant));
    tree.validate();
    EXPECT_EQ(robinson_foulds(original, tree), 0);
  }
}

TEST(Moves, NniOnTerminalEdgeIsRejected) {
  Rng rng(14);
  Tree tree = Tree::random(6, rng);
  EXPECT_FALSE(nni(tree, tree.tip(0), 0));
}

TEST(Moves, InsertionCandidatesGrowWithRadius) {
  Rng rng(15);
  Tree tree = Tree::random(20, rng);
  Slot* p = tree.tip(7)->back;
  const auto record = prune(tree, p);
  const auto near = insertion_candidates(record, 1);
  const auto far = insertion_candidates(record, 5);
  EXPECT_GT(far.size(), near.size());
  // All candidates are live edges.
  for (const Slot* e : far) EXPECT_NE(e->back, nullptr);
  undo_prune(tree, record);
}

TEST(Splits, IdenticalTreesHaveZeroDistance) {
  Rng rng(21);
  Tree a = Tree::random(15, rng);
  Tree b(a);
  EXPECT_EQ(robinson_foulds(a, b), 0);
  EXPECT_DOUBLE_EQ(robinson_foulds_normalized(a, b), 0.0);
}

TEST(Splits, DifferentRandomTreesAreFar) {
  Rng rng1(31), rng2(32);
  Tree a = Tree::random(30, rng1);
  Tree b = Tree::random(30, rng2);
  const int rf = robinson_foulds(a, b);
  EXPECT_GT(rf, 0);
  EXPECT_LE(rf, 2 * (30 - 3));
  EXPECT_EQ(robinson_foulds(a, b), robinson_foulds(b, a));
}

TEST(Splits, CountsNonTrivialSplits) {
  Rng rng(41);
  Tree tree = Tree::random(10, rng);
  EXPECT_EQ(tree_splits(tree).size(), 7u);  // n - 3 internal edges
}

TEST(Parsimony, PerfectDataScoresMinimal) {
  // One column, all taxa identical: zero mutations.
  io::SequenceSet records = {{"t0", "A"}, {"t1", "A"}, {"t2", "A"}, {"t3", "A"}};
  bio::Alignment alignment(records);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(1);
  Tree tree = Tree::random(4, rng);
  EXPECT_EQ(fitch_score(tree, patterns), 0u);
}

TEST(Parsimony, SingleVariantColumnCostsOne) {
  io::SequenceSet records = {{"t0", "A"}, {"t1", "A"}, {"t2", "A"}, {"t3", "C"}};
  bio::Alignment alignment(records);
  const auto patterns = bio::compress_patterns(alignment);
  Rng rng(2);
  Tree tree = Tree::random(4, rng);
  EXPECT_EQ(fitch_score(tree, patterns), 1u);
}

TEST(Parsimony, WeightsMultiplyCosts) {
  io::SequenceSet records = {{"t0", "AAAC"}, {"t1", "AAAC"}, {"t2", "AAAA"}, {"t3", "CCCA"}};
  bio::Alignment alignment(records);
  const auto compressed = bio::compress_patterns(alignment);
  const auto uncompressed = bio::uncompressed_patterns(alignment);
  Rng rng(3);
  Tree tree = Tree::random(4, rng);
  EXPECT_EQ(fitch_score(tree, compressed), fitch_score(tree, uncompressed));
}

TEST(Parsimony, StartingTreeBeatsRandomTree) {
  Rng rng(51);
  const auto alignment = testutil::random_alignment(12, 200, rng);
  const auto patterns = bio::compress_patterns(alignment);

  Rng rng_tree(52);
  Tree start = parsimony_starting_tree(patterns, rng_tree);
  start.validate();

  // Compare against the average of a few random topologies.
  std::uint64_t random_total = 0;
  const int trials = 5;
  for (int i = 0; i < trials; ++i) {
    Tree random_tree = Tree::random(12, rng_tree);
    random_total += fitch_score(random_tree, patterns);
  }
  EXPECT_LE(fitch_score(start, patterns), random_total / trials);
}

TEST(Parsimony, StartingTreeIsDeterministicGivenSeed) {
  Rng rng(61);
  const auto alignment = testutil::random_alignment(10, 100, rng);
  const auto patterns = bio::compress_patterns(alignment);
  Rng a(99), b(99);
  Tree ta = parsimony_starting_tree(patterns, a);
  Tree tb = parsimony_starting_tree(patterns, b);
  EXPECT_EQ(robinson_foulds(ta, tb), 0);
}

}  // namespace
}  // namespace miniphi::tree
