// Tests for src/util: RNG, aligned storage, options parsing, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "src/util/aligned.hpp"
#include "src/util/error.hpp"
#include "src/util/options.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace miniphi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(9);
  const auto first = rng();
  rng.reseed(9);
  EXPECT_EQ(rng(), first);
}

TEST(Aligned, VectorDataIs64ByteAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedDoubles v(n, 1.0);
    EXPECT_TRUE(is_vector_aligned(v.data())) << "n=" << n;
  }
}

TEST(Aligned, SurvivesReallocation) {
  AlignedDoubles v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(static_cast<double>(i));
    EXPECT_TRUE(is_vector_aligned(v.data()));
  }
}

TEST(Error, CheckMacroThrowsWithMessage) {
  try {
    MINIPHI_CHECK(false, "broken thing");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken thing");
  }
}

TEST(Error, AssertMacroThrowsLogicError) {
  EXPECT_THROW(MINIPHI_ASSERT(1 == 2), std::logic_error);
  EXPECT_NO_THROW(MINIPHI_ASSERT(1 == 1));
}

TEST(Options, ParsesAllForms) {
  // Note: a bare flag must be followed by another option or the end of argv;
  // "--flag value" always binds the value (by design, like getopt_long).
  const char* argv[] = {"prog",     "--alpha=0.5", "--sites", "1000",
                        "--openmp", "--name",      "run1",    "input.fasta"};
  Options options(8, argv);
  EXPECT_DOUBLE_EQ(options.get_double("alpha", 1.0), 0.5);
  EXPECT_EQ(options.get_int("sites", 0), 1000);
  EXPECT_TRUE(options.get_bool("openmp", false));
  EXPECT_EQ(options.get_string("name", ""), "run1");
  ASSERT_EQ(options.positional().size(), 1u);
  EXPECT_EQ(options.positional()[0], "input.fasta");
}

TEST(Options, FallbacksApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Options options(1, argv);
  EXPECT_EQ(options.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(options.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(options.get_bool("missing", false));
  EXPECT_FALSE(options.has("missing"));
}

TEST(Options, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--sites", "12x"};
  Options options(3, argv);
  EXPECT_THROW((void)options.get_int("sites", 0), Error);
}

TEST(Options, TracksUnusedOptions) {
  const char* argv[] = {"prog", "--used", "1", "--typo", "2"};
  Options options(5, argv);
  (void)options.get_int("used", 0);
  const auto unused = options.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(CumulativeTimer, AccumulatesIntervals) {
  CumulativeTimer timer;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer guard(timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(timer.intervals(), 3);
  EXPECT_GE(timer.total_seconds(), 0.010);
  timer.reset();
  EXPECT_EQ(timer.intervals(), 0);
  EXPECT_EQ(timer.total_seconds(), 0.0);
}

}  // namespace
}  // namespace miniphi
